//! [`Branch`]: a materialised document — the text plus the version it
//! reflects (paper §3, "Document state").

use crate::tracker::{Tracker, TrackerSnapshot};
use crate::walker::{self, WalkerOpts};
use crate::{ListOpKind, OpLog};
use eg_dag::{Frontier, Graph, LV};
use eg_rle::{DTRange, HasLength as _};
use eg_rope::Rope;

/// A document state: the text at some version of the event graph.
///
/// In the steady state this is *all* a replica keeps in memory — no CRDT
/// metadata, no event graph (which can stay on disk). Merging remote edits
/// transiently builds walker state and applies the resulting transformed
/// operations to the rope.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Branch {
    /// The document text.
    pub content: Rope,
    /// The version (graph frontier) the text reflects.
    pub version: Frontier,
}

impl Branch {
    /// An empty document at the root version.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges all events of the oplog into this branch (up to the oplog's
    /// current version).
    pub fn merge(&mut self, oplog: &OpLog) {
        let tip = oplog.version().clone();
        self.merge_to(oplog, &tip);
    }

    /// Merges the events of `Events(to)` into this branch.
    ///
    /// The branch ends up at version `self.version ∪ to`; events the branch
    /// already reflects are not re-applied.
    pub fn merge_to(&mut self, oplog: &OpLog, to: &[LV]) {
        self.merge_with_opts(oplog, to, WalkerOpts::default());
    }

    /// [`Branch::merge_to`] with explicit walker options (used by the
    /// benchmarks to toggle the §3.5 optimisations).
    ///
    /// Transformed operations are applied to the rope as borrowed
    /// [`crate::TextOpRef`]s: insert content goes straight from the
    /// oplog's UTF-8 arena into the rope's chunks without materialising an
    /// intermediate `String` — the merge path performs no per-op heap
    /// allocation.
    pub fn merge_with_opts(&mut self, oplog: &OpLog, to: &[LV], opts: WalkerOpts) {
        let mut tracker = Tracker::new();
        self.merge_with_opts_reusing(oplog, to, opts, &mut tracker);
    }

    /// [`Branch::merge`] driving a caller-owned [`Tracker`]: the tracker is
    /// reset but its slabs, ID index, and scratch buffers keep their
    /// capacity, so a replica merging repeatedly (a sync daemon, a session
    /// loop) pays the tracker's allocation cost once instead of per merge.
    pub fn merge_reusing(&mut self, oplog: &OpLog, tracker: &mut Tracker) {
        let tip = oplog.version().clone();
        self.merge_with_opts_reusing(oplog, &tip, WalkerOpts::default(), tracker);
    }

    /// [`Branch::merge_with_opts`] with a caller-owned [`Tracker`] (see
    /// [`Branch::merge_reusing`]).
    pub fn merge_with_opts_reusing(
        &mut self,
        oplog: &OpLog,
        to: &[LV],
        opts: WalkerOpts,
        tracker: &mut Tracker,
    ) {
        let target = oplog.graph.version_union(&self.version, to);
        if target.as_slice() == self.version.as_slice() {
            return;
        }
        let diff = oplog.graph.diff(&self.version, &target);
        debug_assert!(diff.only_a.is_empty());
        let (base, spans) = oplog.graph.conflict_window(&self.version, &target);
        let content = &mut self.content;
        walker::walk_reusing(
            oplog,
            &base,
            &spans,
            &diff.only_b,
            opts,
            tracker,
            &mut |_, op| {
                op.apply_to(content);
            },
        );
        self.version = target;
    }

    /// Rehydrates a branch from persisted parts: the materialised text and
    /// the version it reflects (a checkpoint record's payload).
    pub fn from_cached(content: &str, version: Frontier) -> Self {
        Branch {
            content: Rope::from_str(content),
            version,
        }
    }

    /// Merges the oplog tip into this branch by *resuming* a restored
    /// tracker instead of rebuilding one (the cached-load fast path).
    ///
    /// `tracker` must represent the document at `self.version` — i.e. it
    /// was restored from a [`TrackerSnapshot`] taken at exactly this
    /// version. When every new event is causally after `self.version`
    /// (the common append-only tail after a reopen), the walk extends the
    /// restored tracker over just the tail. Otherwise — new events
    /// concurrent with the checkpoint version — resuming is unsound, and
    /// this falls back to the fresh-tracker conflict-window merge, which
    /// is always correct.
    ///
    /// Returns `true` if the resumed fast path was taken.
    pub fn merge_resuming(
        &mut self,
        oplog: &OpLog,
        opts: WalkerOpts,
        tracker: &mut Tracker,
    ) -> bool {
        let tip = oplog.version().clone();
        let target = oplog.graph.version_union(&self.version, &tip);
        if target.as_slice() == self.version.as_slice() {
            return true;
        }
        let diff = oplog.graph.diff(&self.version, &target);
        debug_assert!(diff.only_a.is_empty());
        if !spans_dominate(&oplog.graph, self.version.as_slice(), &diff.only_b) {
            self.merge_with_opts_reusing(oplog, &tip, opts, tracker);
            return false;
        }
        let content = &mut self.content;
        walker::walk_resuming(
            oplog,
            &self.version,
            &diff.only_b,
            &diff.only_b,
            opts,
            tracker,
            &mut |_, op| {
                op.apply_to(content);
            },
        );
        self.version = target;
        true
    }

    /// Applies an *uncontended* tail of events directly to the document:
    /// the cached-load fast path for the common case where everything
    /// after a checkpoint is one linear chain
    /// ([`Graph::is_sequential_extension`] from `tail.start` off
    /// `self.version`).
    ///
    /// With nothing concurrent in the tail, each run's recorded `loc` is
    /// already a document coordinate at the moment it executed — the
    /// transformation the walker would compute is the identity — so the
    /// ops replay verbatim onto the rope with no tracker at all. A
    /// forward or backward delete run both net-remove the `loc` range of
    /// the run-start document; a forward insert run places its content
    /// at `loc.start` (backward insert runs are unit-length).
    pub fn apply_sequential_tail(&mut self, oplog: &OpLog, tail: DTRange) {
        debug_assert!(oplog
            .graph
            .is_sequential_extension(tail.start, self.version.as_slice()));
        if tail.is_empty() {
            return;
        }
        for (_, run) in oplog.ops_in(tail) {
            match run.kind {
                ListOpKind::Ins => {
                    let content = run.content.expect("insert run carries content");
                    self.content
                        .insert(run.loc.start, oplog.content_slice(content));
                }
                ListOpKind::Del => {
                    self.content.remove(run.loc.start, run.loc.len());
                }
            }
        }
        self.version = Frontier::new_1(tail.end - 1);
    }

    /// The number of characters in the document.
    pub fn len_chars(&self) -> usize {
        self.content.len_chars()
    }
}

/// Returns `true` if every event in `spans` is causally after the whole of
/// `base` — the precondition for walking `spans` on a tracker that already
/// represents the document at `base`.
///
/// Events are scanned in ascending LV order (a topological order), so an
/// event whose parent lies inside `spans` inherits domination from that
/// already-checked parent; only the minimal events of `spans` pay a graph
/// query.
fn spans_dominate(graph: &Graph, base: &[LV], spans: &[DTRange]) -> bool {
    let in_spans = |lv: LV| -> bool {
        spans
            .binary_search_by(|s| {
                if s.end <= lv {
                    std::cmp::Ordering::Less
                } else if s.start > lv {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    };
    for &r in spans {
        let mut lv = r.start;
        while lv < r.end {
            let (entry, offset) = graph.entry_for(lv);
            let dominated = if offset > 0 {
                // Mid-run: the parent is `lv - 1`.
                in_spans(lv - 1) || graph.frontier_contains_frontier(&[lv - 1], base)
            } else if entry.parents.as_slice().iter().any(|&p| in_spans(p)) {
                true
            } else {
                graph.frontier_contains_frontier(entry.parents.as_slice(), base)
            };
            if !dominated {
                return false;
            }
            lv = entry.span.end.min(r.end);
        }
    }
    true
}

impl OpLog {
    /// Builds the document at the oplog's current version by replaying the
    /// (entire) event graph.
    pub fn checkout_tip(&self) -> Branch {
        let mut b = Branch::new();
        b.merge(self);
        b
    }

    /// Builds the historical document at an arbitrary version.
    pub fn checkout(&self, version: &[LV]) -> Branch {
        let mut b = Branch::new();
        b.merge_to(self, version);
        b
    }

    /// The cached-load fast path (paper §3.5/§3.6): builds the document at
    /// the oplog tip starting from a persisted checkpoint — the
    /// materialised `content` at `version` plus (optionally) the tracker
    /// snapshot taken there — replaying only the events past `version`
    /// instead of the whole history.
    ///
    /// With a snapshot whose version matches `version`, the restored
    /// tracker is resumed over the tail ([`Branch::merge_resuming`]);
    /// without one (or when tail events are concurrent with the
    /// checkpoint) a fresh conflict-window merge runs from `version`,
    /// which is still O(tail + conflict window), not O(history).
    ///
    /// The result is byte-identical to [`OpLog::checkout_tip`]. The caller
    /// is responsible for snapshot/version integrity
    /// ([`TrackerSnapshot::validate`] plus remote→local version mapping
    /// for untrusted inputs).
    pub fn open_cached(
        &self,
        content: &str,
        version: &[LV],
        snapshot: Option<&TrackerSnapshot>,
    ) -> Branch {
        let mut b = Branch::from_cached(content, Frontier::from(version));
        match snapshot {
            Some(snap) => {
                let mut tracker = Tracker::from_snapshot(snap);
                b.merge_resuming(self, WalkerOpts::default(), &mut tracker);
            }
            None => b.merge(self),
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_checkout() {
        let oplog = OpLog::new();
        let b = oplog.checkout_tip();
        assert_eq!(b.content.to_string(), "");
        assert!(b.version.is_root());
    }

    #[test]
    fn sequential_checkout() {
        let mut oplog = OpLog::new();
        let a = oplog.get_or_create_agent("alice");
        oplog.add_insert(a, 0, "hello world");
        oplog.add_delete(a, 5, 6);
        oplog.add_insert(a, 5, "!");
        let b = oplog.checkout_tip();
        assert_eq!(b.content.to_string(), "hello!");
        assert_eq!(&b.version, oplog.version());
    }

    #[test]
    fn incremental_merge_matches_batch() {
        let mut oplog = OpLog::new();
        let a = oplog.get_or_create_agent("alice");
        let mut live = Branch::new();
        for i in 0..20 {
            oplog.add_insert(a, i, "x");
            live.merge(&oplog);
        }
        oplog.add_delete(a, 3, 5);
        live.merge(&oplog);
        let batch = oplog.checkout_tip();
        assert_eq!(live, batch);
    }

    #[test]
    fn open_cached_matches_checkout_tip() {
        use crate::testgen::random_oplog;
        use crate::walker;

        for seed in 0..8u64 {
            let oplog = random_oplog(seed, 400, 3, 0.2);
            let expect = oplog.checkout_tip();
            let all: Vec<LV> = (0..oplog.len()).collect();
            // Checkpoint at a mid-history version, then open cached with
            // and without a tracker snapshot.
            for frac in [1, 2, 3] {
                let cut = oplog.len() * frac / 4;
                let version = oplog.graph.find_dominators(&all[..cut.max(1)]);
                let at = oplog.checkout(version.as_slice());
                let content = at.content.to_string();

                let cold = oplog.open_cached(&content, version.as_slice(), None);
                assert_eq!(
                    cold.content, expect.content,
                    "seed {seed} frac {frac} no-snapshot"
                );
                assert_eq!(cold.version, expect.version);

                let tracker = walker::tracker_at(&oplog, version.as_slice(), WalkerOpts::default());
                let snap = tracker.to_snapshot();
                snap.validate(oplog.len())
                    .expect("self-made snapshot validates");
                let warm = oplog.open_cached(&content, version.as_slice(), Some(&snap));
                assert_eq!(
                    warm.content, expect.content,
                    "seed {seed} frac {frac} snapshot"
                );
                assert_eq!(warm.version, expect.version);
            }
        }
    }

    #[test]
    fn apply_sequential_tail_matches_checkout() {
        let mut oplog = OpLog::new();
        let a = oplog.get_or_create_agent("alice");
        oplog.add_insert(a, 0, "hello world");
        let cut = oplog.len();
        let version = oplog.version().clone();
        let at = oplog.checkout(version.as_slice());
        // Sequential tail past the checkpoint: typing, deleting, typing.
        oplog.add_insert(a, 11, "!!!");
        oplog.add_delete(a, 0, 6);
        oplog.add_insert(a, 0, "W");
        let mut b = Branch::from_cached(&at.content.to_string(), version);
        b.apply_sequential_tail(&oplog, (cut..oplog.len()).into());
        assert_eq!(b, oplog.checkout_tip());
    }

    #[test]
    fn apply_sequential_tail_random_single_author() {
        use crate::testgen::random_oplog;
        for seed in 0..8u64 {
            // One replica, no merges: the whole history is one linear chain,
            // so any suffix is a valid sequential tail.
            let oplog = random_oplog(seed, 300, 1, 0.0);
            let expect = oplog.checkout_tip();
            for frac in [0, 1, 2, 3, 4] {
                let cut = (oplog.len() * frac / 4).max(1);
                let version = Frontier::new_1(cut - 1);
                let at = oplog.checkout(version.as_slice());
                let mut b = Branch::from_cached(&at.content.to_string(), version);
                b.apply_sequential_tail(&oplog, (cut..oplog.len()).into());
                assert_eq!(b.content, expect.content, "seed {seed} frac {frac}");
                assert_eq!(b.version, expect.version);
            }
        }
    }

    #[test]
    fn merge_resuming_falls_back_on_concurrent_tail() {
        // Checkpoint on one branch, then events arrive that are concurrent
        // with the checkpoint version: resuming is unsound and must fall
        // back to the fresh conflict-window merge.
        let mut oplog = OpLog::new();
        let a = oplog.get_or_create_agent("alice");
        let b = oplog.get_or_create_agent("bob");
        oplog.add_insert(a, 0, "base");
        let v0 = oplog.version().clone();
        let va = oplog.add_insert_at(a, &v0, 4, "-alice");
        let checkpoint = Frontier::new_1(va.last());
        let at = oplog.checkout(checkpoint.as_slice());
        let tracker_state =
            crate::walker::tracker_at(&oplog, checkpoint.as_slice(), WalkerOpts::default());
        let snap = tracker_state.to_snapshot();
        // Concurrent tail: bob edits from v0, not from alice's tip.
        oplog.add_insert_at(b, &v0, 4, "+bob");

        let mut warm = Branch::from_cached(&at.content.to_string(), checkpoint.clone());
        let mut tracker = Tracker::from_snapshot(&snap);
        let resumed = warm.merge_resuming(&oplog, WalkerOpts::default(), &mut tracker);
        assert!(!resumed, "concurrent tail must take the fallback path");
        assert_eq!(warm, oplog.checkout_tip());
    }

    #[test]
    fn historical_checkout() {
        let mut oplog = OpLog::new();
        let a = oplog.get_or_create_agent("alice");
        let v1 = oplog.add_insert(a, 0, "abc");
        let v2 = oplog.add_delete(a, 0, 1);
        assert_eq!(oplog.checkout(&[v1.last()]).content.to_string(), "abc");
        assert_eq!(oplog.checkout(&[v2.last()]).content.to_string(), "bc");
        assert_eq!(oplog.checkout(&[]).content.to_string(), "");
    }
}
