//! [`Branch`]: a materialised document — the text plus the version it
//! reflects (paper §3, "Document state").

use crate::tracker::Tracker;
use crate::walker::{self, WalkerOpts};
use crate::OpLog;
use eg_dag::{Frontier, LV};
use eg_rope::Rope;

/// A document state: the text at some version of the event graph.
///
/// In the steady state this is *all* a replica keeps in memory — no CRDT
/// metadata, no event graph (which can stay on disk). Merging remote edits
/// transiently builds walker state and applies the resulting transformed
/// operations to the rope.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Branch {
    /// The document text.
    pub content: Rope,
    /// The version (graph frontier) the text reflects.
    pub version: Frontier,
}

impl Branch {
    /// An empty document at the root version.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges all events of the oplog into this branch (up to the oplog's
    /// current version).
    pub fn merge(&mut self, oplog: &OpLog) {
        let tip = oplog.version().clone();
        self.merge_to(oplog, &tip);
    }

    /// Merges the events of `Events(to)` into this branch.
    ///
    /// The branch ends up at version `self.version ∪ to`; events the branch
    /// already reflects are not re-applied.
    pub fn merge_to(&mut self, oplog: &OpLog, to: &[LV]) {
        self.merge_with_opts(oplog, to, WalkerOpts::default());
    }

    /// [`Branch::merge_to`] with explicit walker options (used by the
    /// benchmarks to toggle the §3.5 optimisations).
    ///
    /// Transformed operations are applied to the rope as borrowed
    /// [`crate::TextOpRef`]s: insert content goes straight from the
    /// oplog's UTF-8 arena into the rope's chunks without materialising an
    /// intermediate `String` — the merge path performs no per-op heap
    /// allocation.
    pub fn merge_with_opts(&mut self, oplog: &OpLog, to: &[LV], opts: WalkerOpts) {
        let mut tracker = Tracker::new();
        self.merge_with_opts_reusing(oplog, to, opts, &mut tracker);
    }

    /// [`Branch::merge`] driving a caller-owned [`Tracker`]: the tracker is
    /// reset but its slabs, ID index, and scratch buffers keep their
    /// capacity, so a replica merging repeatedly (a sync daemon, a session
    /// loop) pays the tracker's allocation cost once instead of per merge.
    pub fn merge_reusing(&mut self, oplog: &OpLog, tracker: &mut Tracker) {
        let tip = oplog.version().clone();
        self.merge_with_opts_reusing(oplog, &tip, WalkerOpts::default(), tracker);
    }

    /// [`Branch::merge_with_opts`] with a caller-owned [`Tracker`] (see
    /// [`Branch::merge_reusing`]).
    pub fn merge_with_opts_reusing(
        &mut self,
        oplog: &OpLog,
        to: &[LV],
        opts: WalkerOpts,
        tracker: &mut Tracker,
    ) {
        let target = oplog.graph.version_union(&self.version, to);
        if target.as_slice() == self.version.as_slice() {
            return;
        }
        let diff = oplog.graph.diff(&self.version, &target);
        debug_assert!(diff.only_a.is_empty());
        let (base, spans) = oplog.graph.conflict_window(&self.version, &target);
        let content = &mut self.content;
        walker::walk_reusing(
            oplog,
            &base,
            &spans,
            &diff.only_b,
            opts,
            tracker,
            &mut |_, op| {
                op.apply_to(content);
            },
        );
        self.version = target;
    }

    /// The number of characters in the document.
    pub fn len_chars(&self) -> usize {
        self.content.len_chars()
    }
}

impl OpLog {
    /// Builds the document at the oplog's current version by replaying the
    /// (entire) event graph.
    pub fn checkout_tip(&self) -> Branch {
        let mut b = Branch::new();
        b.merge(self);
        b
    }

    /// Builds the historical document at an arbitrary version.
    pub fn checkout(&self, version: &[LV]) -> Branch {
        let mut b = Branch::new();
        b.merge_to(self, version);
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_checkout() {
        let oplog = OpLog::new();
        let b = oplog.checkout_tip();
        assert_eq!(b.content.to_string(), "");
        assert!(b.version.is_root());
    }

    #[test]
    fn sequential_checkout() {
        let mut oplog = OpLog::new();
        let a = oplog.get_or_create_agent("alice");
        oplog.add_insert(a, 0, "hello world");
        oplog.add_delete(a, 5, 6);
        oplog.add_insert(a, 5, "!");
        let b = oplog.checkout_tip();
        assert_eq!(b.content.to_string(), "hello!");
        assert_eq!(&b.version, oplog.version());
    }

    #[test]
    fn incremental_merge_matches_batch() {
        let mut oplog = OpLog::new();
        let a = oplog.get_or_create_agent("alice");
        let mut live = Branch::new();
        for i in 0..20 {
            oplog.add_insert(a, i, "x");
            live.merge(&oplog);
        }
        oplog.add_delete(a, 3, 5);
        live.merge(&oplog);
        let batch = oplog.checkout_tip();
        assert_eq!(live, batch);
    }

    #[test]
    fn historical_checkout() {
        let mut oplog = OpLog::new();
        let a = oplog.get_or_create_agent("alice");
        let v1 = oplog.add_insert(a, 0, "abc");
        let v2 = oplog.add_delete(a, 0, 1);
        assert_eq!(oplog.checkout(&[v1.last()]).content.to_string(), "abc");
        assert_eq!(oplog.checkout(&[v2.last()]).content.to_string(), "bc");
        assert_eq!(oplog.checkout(&[]).content.to_string(), "");
    }
}
