//! The walk driver: replays a window of the event graph through the
//! [`Tracker`](crate::tracker::Tracker), emitting transformed operations
//! (paper §3.2), clearing internal state at critical versions and
//! fast-forwarding untransformed runs (§3.5), and replaying only conflict
//! windows on merge (§3.6).

use crate::op::{ListOpKind, TextOpRef, TextOperation};
use crate::tracker::{Tracker, TRACKER_FANOUT};
use crate::OpLog;
use eg_dag::walk::PlanOrder;
use eg_dag::{Frontier, LV};
use eg_rle::{DTRange, HasLength};

/// Tuning knobs for the walker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkerOpts {
    /// Enables the §3.5 optimisations: clearing the internal state at
    /// critical versions and emitting events untransformed when both their
    /// version and parent version are critical. Disabling this reproduces
    /// the "opt disabled" series of the paper's Fig. 9.
    pub enable_clearing: bool,
    /// Branch-ordering policy for the topological sort (§3.2, §3.7). The
    /// non-default policies exist only for the traversal-order ablation
    /// that §4.3 describes ("as much as 8× slower").
    pub plan_order: PlanOrder,
    /// Enables the tracker's last-used-cursor cache (on by default).
    /// Disabling reproduces the reference (uncached) replay for the
    /// equivalence property tests and the `walker_hot` cache ablation;
    /// output is byte-identical either way.
    pub cursor_cache: bool,
    /// Enables the tracker's emit-position cache (on by default):
    /// consecutive sequential insert runs that extend the same record
    /// entry skip the per-op upward `offset_of` walk. Disabling reproduces
    /// the reference (uncached) emit path for the equivalence property
    /// tests; output is byte-identical either way.
    pub emit_cache: bool,
}

impl Default for WalkerOpts {
    fn default() -> Self {
        WalkerOpts {
            enable_clearing: true,
            plan_order: PlanOrder::SmallestFirst,
            cursor_cache: true,
            emit_cache: true,
        }
    }
}

/// Replays `spans` (ascending, causally closed above `base`) and calls
/// `out(lvs, op)` with the transformed operation for every event inside
/// `emit` (ascending subset of `spans`).
///
/// Transformed operations arrive in a linear order: applying them in
/// sequence to the document at `Events(version at emit start)` yields the
/// merged document (the "rebase" of §3).
///
/// Operations are emitted as borrowed [`TextOpRef`]s — insert content is a
/// `&str` slice of the oplog's content arena, valid only for the duration
/// of the callback. Callers that need ownership convert with
/// [`TextOpRef::to_owned`] (that is the only per-op allocation in the
/// pipeline, and it is opt-in).
pub fn walk<F>(
    oplog: &OpLog,
    base: &Frontier,
    spans: &[DTRange],
    emit: &[DTRange],
    opts: WalkerOpts,
    out: &mut F,
) where
    F: FnMut(DTRange, TextOpRef<'_>),
{
    walk_with_fanout::<TRACKER_FANOUT, F>(oplog, base, spans, emit, opts, out)
}

/// [`walk`] with an explicit tracker-tree fanout, for the `walker_hot`
/// fanout sweep. Production callers use [`walk`], which fixes the fanout
/// at [`TRACKER_FANOUT`].
pub fn walk_with_fanout<const N: usize, F>(
    oplog: &OpLog,
    base: &Frontier,
    spans: &[DTRange],
    emit: &[DTRange],
    opts: WalkerOpts,
    out: &mut F,
) where
    F: FnMut(DTRange, TextOpRef<'_>),
{
    let mut tracker = Tracker::<N>::new_with_caches(opts.cursor_cache, opts.emit_cache);
    walk_reusing_with_fanout(oplog, base, spans, emit, opts, &mut tracker, out)
}

/// [`walk`] driving a caller-owned [`Tracker`] instead of building a fresh
/// one: the tracker is reset (retaining its slab, index, and scratch
/// capacity) and left populated on return, so a long-lived replica can
/// replay thousands of windows with near-zero allocator traffic.
pub fn walk_reusing<F>(
    oplog: &OpLog,
    base: &Frontier,
    spans: &[DTRange],
    emit: &[DTRange],
    opts: WalkerOpts,
    tracker: &mut Tracker<TRACKER_FANOUT>,
    out: &mut F,
) where
    F: FnMut(DTRange, TextOpRef<'_>),
{
    walk_reusing_with_fanout(oplog, base, spans, emit, opts, tracker, out)
}

/// [`walk_reusing`] with an explicit tracker-tree fanout.
pub fn walk_reusing_with_fanout<const N: usize, F>(
    oplog: &OpLog,
    base: &Frontier,
    spans: &[DTRange],
    emit: &[DTRange],
    opts: WalkerOpts,
    tracker: &mut Tracker<N>,
    out: &mut F,
) where
    F: FnMut(DTRange, TextOpRef<'_>),
{
    walk_driver(oplog, base, spans, emit, opts, tracker, false, out)
}

/// [`walk_reusing`] *without* the tracker reset: the caller-owned tracker
/// already represents the document at `base` (a restored checkpoint
/// snapshot, or the final state of a previous walk whose window ended
/// exactly at `base`), and the walk extends it over `spans`.
///
/// This is the cached-load fast path (paper §3.5): instead of rebuilding
/// tracker state from the latest critical version, a resumed walk replays
/// only the oplog tail. `base` must be the tracker's current (prepare ==
/// effect) version, and — as with every walk — a version dominated by all
/// events in `spans`.
///
/// The walk starts with the tracker considered dirty, so the §3.5
/// fast-forward stays off until the first critical version is crossed and
/// the state cleared; output is byte-identical to a fresh walk either way.
pub fn walk_resuming<F>(
    oplog: &OpLog,
    base: &Frontier,
    spans: &[DTRange],
    emit: &[DTRange],
    opts: WalkerOpts,
    tracker: &mut Tracker<TRACKER_FANOUT>,
    out: &mut F,
) where
    F: FnMut(DTRange, TextOpRef<'_>),
{
    walk_driver(oplog, base, spans, emit, opts, tracker, true, out)
}

/// Shared walk loop behind [`walk_reusing_with_fanout`] (fresh tracker
/// state) and [`walk_resuming`] (tracker restored at `base`).
#[allow(clippy::too_many_arguments)]
fn walk_driver<const N: usize, F>(
    oplog: &OpLog,
    base: &Frontier,
    spans: &[DTRange],
    emit: &[DTRange],
    opts: WalkerOpts,
    tracker: &mut Tracker<N>,
    resume: bool,
    out: &mut F,
) where
    F: FnMut(DTRange, TextOpRef<'_>),
{
    // The plan's pooled buffers live on the tracker so reuse carries them
    // across windows; it is taken out for the duration of the walk because
    // the steps borrow from its range pool while the tracker is mutated.
    let mut plan = std::mem::take(&mut tracker.plan);
    plan.plan_with_order(&oplog.graph, base, spans, emit, opts.plan_order);
    // `clean` means: the tracker holds nothing but a placeholder, standing
    // for the document at the current (prepare == effect) version. A
    // resumed tracker carries real records for the pre-`base` window, so
    // it starts dirty.
    let mut clean = if resume {
        false
    } else {
        tracker.reset_with_caches(opts.cursor_cache, opts.emit_cache);
        true
    };

    // Cursor into `emit` (ranges are ascending, but consumption can jump
    // between branches, so we binary search).
    let emit_overlap = |range: DTRange| -> Option<(bool, usize)> {
        // Returns (emit?, prefix_len) for the prefix of `range` with a
        // uniform emit flag.
        match emit.binary_search_by(|r| {
            if r.end <= range.start {
                std::cmp::Ordering::Less
            } else if r.start > range.start {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(idx) => {
                let r = emit[idx];
                Some((true, (r.end.min(range.end)) - range.start))
            }
            Err(idx) => {
                let next_start = emit.get(idx).map(|r| r.start).unwrap_or(usize::MAX);
                Some((false, (next_start.min(range.end)) - range.start))
            }
        }
    };

    for step in plan.iter() {
        if !step.retreat.is_empty() || !step.advance.is_empty() {
            debug_assert!(!clean || step_targets_are_post_clear(step.retreat));
            for r in step.retreat.iter().rev() {
                tracker.retreat(oplog, *r);
            }
            for r in step.advance {
                tracker.advance(oplog, *r);
            }
            clean = false;
        }

        let mut range = step.consume;
        while !range.is_empty() {
            // Fast-forward: with a clean tracker at the run's parent
            // version, events whose versions are critical need no
            // transformation at all (§3.5).
            if opts.enable_clearing && clean {
                if let Some((crit, offset)) = oplog.graph.criticals().find_with_offset(range.start)
                {
                    let ff_end = (crit.start + crit.len()).min(range.end);
                    let _ = offset;
                    emit_as_is(oplog, (range.start..ff_end).into(), &emit_overlap, out);
                    range.start = ff_end;
                    continue;
                }
            }

            // Apply through the tracker, chunked on emit boundaries.
            let (emit_flag, len) = emit_overlap(range).expect("emit ranges exhausted");
            let chunk: DTRange = (range.start..range.start + len.min(range.len())).into();
            tracker.apply_range(oplog, chunk, emit_flag, out);
            clean = false;
            range.start = chunk.end;

            // Clearing: if we just crossed a critical version, drop the
            // internal state (§3.5).
            if opts.enable_clearing && oplog.graph.is_critical(chunk.end - 1) {
                tracker.clear();
                clean = true;
            }
        }
    }
    tracker.plan = plan;
}

/// Emits the events of `range` untransformed (their version and parent
/// versions are critical, so the transformed operation equals the
/// original).
fn emit_as_is<F, G>(oplog: &OpLog, range: DTRange, emit_overlap: &G, out: &mut F)
where
    F: FnMut(DTRange, TextOpRef<'_>),
    G: Fn(DTRange) -> Option<(bool, usize)>,
{
    let mut range = range;
    while !range.is_empty() {
        let (emit_flag, len) = emit_overlap(range).expect("emit ranges exhausted");
        let chunk: DTRange = (range.start..range.start + len.min(range.len())).into();
        if emit_flag {
            for (lvs, mut run) in oplog.ops_in(chunk) {
                // Normalise multi-unit backward deletes: deleting [s, e)
                // backwards one key-press at a time has the same effect as
                // deleting the whole range at `s`.
                if run.kind == ListOpKind::Del {
                    run.fwd = true;
                }
                let op = TextOpRef {
                    kind: run.kind,
                    pos: run.loc.start,
                    len: lvs.len(),
                    content: run.content.map(|c| oplog.content_slice(c)),
                };
                out(lvs, op);
            }
        }
        range.start = chunk.end;
    }
}

/// Debug-build sanity helper: retreats with a clean tracker would touch
/// records that no longer exist; the §3.5 invariants forbid it.
fn step_targets_are_post_clear(retreat: &[DTRange]) -> bool {
    retreat.is_empty()
}

/// Builds a tracker representing the document at `version`, with the
/// prepare and effect dimensions both at exactly `version` — the state a
/// checkpoint snapshot captures ([`Tracker::to_snapshot`]) and that
/// [`walk_resuming`] later extends over the oplog tail.
///
/// Only the §3.5 conflict window (from the latest critical version at or
/// below `version`) is replayed, not the whole history; at a critical
/// version the window is empty and the tracker is just the placeholder.
pub fn tracker_at(oplog: &OpLog, version: &[LV], opts: WalkerOpts) -> Tracker<TRACKER_FANOUT> {
    let mut tracker = Tracker::new_with_caches(opts.cursor_cache, opts.emit_cache);
    if version.is_empty() {
        return tracker;
    }
    let (base, spans) = oplog.graph.conflict_window(version, version);
    if spans.is_empty() {
        return tracker;
    }
    walk_reusing(
        oplog,
        &base,
        &spans,
        &[],
        opts,
        &mut tracker,
        &mut |_, _| {},
    );
    // The walk leaves the prepare dimension at the tip of the last run it
    // consumed; advance it over whatever else `version` dominates so that
    // prepare == effect == `version`. Fast-forwarded runs are critical
    // versions and hence already inside any later prepare version, so
    // every range advanced here has live records in the tracker.
    let mut last_consumed = None;
    for step in tracker.plan.iter() {
        if !step.consume.is_empty() {
            last_consumed = Some(step.consume.end - 1);
        }
    }
    let prepare = match last_consumed {
        Some(lv) => Frontier::new_1(lv),
        None => base,
    };
    let gap = oplog.graph.diff(prepare.as_slice(), version);
    debug_assert!(gap.only_a.is_empty());
    for r in gap.only_b {
        tracker.advance(oplog, r);
    }
    tracker
}

/// Replays the full event graph applying the emitted (transformed)
/// operations to a length counter instead of a rope, verifying every
/// position stays in bounds.
///
/// This is the structural-position check decoders run on untrusted files:
/// an event graph can be well-formed (valid parents, agents, RLE columns)
/// while its op *positions* reference characters that never exist in the
/// document the events build — applying such an op would panic inside the
/// rope. The simulation walks the exact plan a checkout walks and checks
/// the exact positions a checkout would apply, so `true` guarantees
/// [`OpLog::checkout_tip`] cannot go out of bounds, and valid logs are
/// never rejected.
pub fn events_apply_cleanly(oplog: &OpLog) -> bool {
    if oplog.is_empty() {
        return true;
    }
    let spans = [DTRange::from(0..oplog.len())];
    let mut len = 0usize;
    let mut ok = true;
    walk(
        oplog,
        &Frontier::root(),
        &spans,
        &spans,
        WalkerOpts::default(),
        &mut |_, op| {
            if !ok {
                return;
            }
            match op.kind {
                ListOpKind::Ins if op.pos <= len => len += op.len,
                ListOpKind::Del if op.pos.checked_add(op.len).is_some_and(|e| e <= len) => {
                    len -= op.len;
                }
                _ => ok = false,
            }
        },
    );
    ok
}

/// Computes the transformed operations that take a document at version
/// `from` to the version `merge_frontier ∪ from`.
///
/// Returns the final version alongside the (LV range, operation) pairs in
/// application order. This is an ownership boundary: the borrowed ops the
/// walker emits are materialised into owned [`TextOperation`]s here.
pub fn transformed_ops(
    oplog: &OpLog,
    from: &[LV],
    merge_frontier: &[LV],
    opts: WalkerOpts,
) -> (Frontier, Vec<(DTRange, TextOperation)>) {
    transformed_ops_with_fanout::<TRACKER_FANOUT>(oplog, from, merge_frontier, opts)
}

/// [`transformed_ops`] with an explicit tracker-tree fanout (see
/// [`walk_with_fanout`]).
pub fn transformed_ops_with_fanout<const N: usize>(
    oplog: &OpLog,
    from: &[LV],
    merge_frontier: &[LV],
    opts: WalkerOpts,
) -> (Frontier, Vec<(DTRange, TextOperation)>) {
    let mut tracker = Tracker::<N>::new_with_caches(opts.cursor_cache, opts.emit_cache);
    transformed_ops_reusing_with_fanout(oplog, from, merge_frontier, opts, &mut tracker)
}

/// [`transformed_ops`] driving a caller-owned [`Tracker`] (see
/// [`walk_reusing`]).
pub fn transformed_ops_reusing(
    oplog: &OpLog,
    from: &[LV],
    merge_frontier: &[LV],
    opts: WalkerOpts,
    tracker: &mut Tracker<TRACKER_FANOUT>,
) -> (Frontier, Vec<(DTRange, TextOperation)>) {
    transformed_ops_reusing_with_fanout(oplog, from, merge_frontier, opts, tracker)
}

/// [`transformed_ops_reusing`] with an explicit tracker-tree fanout.
pub fn transformed_ops_reusing_with_fanout<const N: usize>(
    oplog: &OpLog,
    from: &[LV],
    merge_frontier: &[LV],
    opts: WalkerOpts,
    tracker: &mut Tracker<N>,
) -> (Frontier, Vec<(DTRange, TextOperation)>) {
    let target = oplog.graph.version_union(from, merge_frontier);
    if target.as_slice() == from {
        return (target, Vec::new());
    }
    let diff = oplog.graph.diff(from, &target);
    debug_assert!(diff.only_a.is_empty());
    let (base, spans) = oplog.graph.conflict_window(from, &target);
    let mut out = Vec::new();
    walk_reusing_with_fanout::<N, _>(
        oplog,
        &base,
        &spans,
        &diff.only_b,
        opts,
        tracker,
        &mut |lvs, op| out.push((lvs, op.to_owned())),
    );
    (target, out)
}
