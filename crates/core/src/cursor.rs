//! Cursor and selection transformation across transformed operations.
//!
//! When remote events merge into a live document, the editor applies the
//! walker's transformed operations to the text — and must also move its
//! cursors: a caret at index 10 must stay on the same character when a
//! remote user inserts five characters at index 3. This module provides
//! that mapping for single positions and selections, over the
//! [`TextOperation`]s produced by [`crate::walker::transformed_ops`] /
//! [`crate::OpLog::diff_versions`].
//!
//! # Examples
//!
//! ```
//! use egwalker::cursor::{transform_position, Bias};
//! use egwalker::TextOperation;
//!
//! let remote = TextOperation::ins(3, "abcde");
//! assert_eq!(transform_position(10, &remote, Bias::Left), 15);
//! assert_eq!(transform_position(2, &remote, Bias::Left), 2);
//! // A caret exactly at the insertion point keeps its side by bias.
//! assert_eq!(transform_position(3, &remote, Bias::Left), 3);
//! assert_eq!(transform_position(3, &remote, Bias::Right), 8);
//! ```

use crate::op::{ListOpKind, TextOperation};

/// Which way a cursor leans when text is inserted exactly at it.
///
/// `Left` keeps the caret before the inserted text (the common choice for
/// a remote peer's insertion at your caret); `Right` moves it after.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Bias {
    /// Stay before text inserted exactly at the cursor.
    #[default]
    Left,
    /// Move after text inserted exactly at the cursor.
    Right,
}

/// Maps a document position across one operation.
///
/// Positions are in characters, `0..=len`; the result is a valid position
/// in the document after the operation.
pub fn transform_position(pos: usize, op: &TextOperation, bias: Bias) -> usize {
    match op.kind {
        ListOpKind::Ins => {
            if pos < op.pos || (pos == op.pos && bias == Bias::Left) {
                pos
            } else {
                pos + op.len
            }
        }
        ListOpKind::Del => {
            if pos <= op.pos {
                pos
            } else if pos <= op.pos + op.len {
                // The cursor was inside the deleted range: collapse to its
                // start.
                op.pos
            } else {
                pos - op.len
            }
        }
    }
}

/// Maps a position across a whole batch of operations (in application
/// order), e.g. the output of [`crate::OpLog::diff_versions`].
pub fn transform_position_all(pos: usize, ops: &[TextOperation], bias: Bias) -> usize {
    ops.iter()
        .fold(pos, |p, op| transform_position(p, op, bias))
}

/// An editor selection: an anchor and a head (caret). `anchor == head` is
/// a plain caret.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Selection {
    /// The fixed end of the selection.
    pub anchor: usize,
    /// The moving end (the caret).
    pub head: usize,
}

impl Selection {
    /// A collapsed selection (caret) at `pos`.
    pub fn caret(pos: usize) -> Self {
        Selection {
            anchor: pos,
            head: pos,
        }
    }

    /// Returns `true` if the selection is a plain caret.
    pub fn is_caret(&self) -> bool {
        self.anchor == self.head
    }

    /// The selected range in ascending order.
    pub fn range(&self) -> (usize, usize) {
        (self.anchor.min(self.head), self.anchor.max(self.head))
    }
}

/// Maps a selection across a batch of operations.
///
/// Both endpoints lean away from the selection interior (so concurrent
/// insertions at the boundary do not silently join the selection), and a
/// caret uses `Left` bias for both ends.
pub fn transform_selection(sel: Selection, ops: &[TextOperation]) -> Selection {
    if sel.is_caret() {
        let p = transform_position_all(sel.head, ops, Bias::Left);
        return Selection::caret(p);
    }
    let (lo, hi) = sel.range();
    let lo2 = transform_position_all(lo, ops, Bias::Right);
    let hi2 = transform_position_all(hi, ops, Bias::Left);
    let (lo2, hi2) = if lo2 <= hi2 { (lo2, hi2) } else { (hi2, hi2) };
    if sel.anchor <= sel.head {
        Selection {
            anchor: lo2,
            head: hi2,
        }
    } else {
        Selection {
            anchor: hi2,
            head: lo2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpLog;

    #[test]
    fn insert_before_shifts() {
        let op = TextOperation::ins(2, "xy");
        assert_eq!(transform_position(5, &op, Bias::Left), 7);
        assert_eq!(transform_position(2, &op, Bias::Right), 4);
        assert_eq!(transform_position(1, &op, Bias::Left), 1);
        assert_eq!(transform_position(1, &op, Bias::Right), 1);
    }

    #[test]
    fn delete_before_shifts_and_collapses() {
        let op = TextOperation::del(2, 3); // removes [2, 5)
        assert_eq!(transform_position(1, &op, Bias::Left), 1);
        assert_eq!(transform_position(2, &op, Bias::Left), 2);
        assert_eq!(transform_position(3, &op, Bias::Left), 2);
        assert_eq!(transform_position(5, &op, Bias::Left), 2);
        assert_eq!(transform_position(6, &op, Bias::Left), 3);
    }

    #[test]
    fn batch_application_composes() {
        let ops = vec![TextOperation::ins(0, "abc"), TextOperation::del(1, 1)];
        // pos 2 -> after ins at 0: 5 -> after del at 1: 4.
        assert_eq!(transform_position_all(2, &ops, Bias::Left), 4);
    }

    #[test]
    fn selection_endpoints_lean_outward() {
        let sel = Selection { anchor: 2, head: 6 };
        // Insert exactly at the selection start: should stay outside.
        let ops = vec![TextOperation::ins(2, "zz")];
        let out = transform_selection(sel, &ops);
        assert_eq!(out, Selection { anchor: 4, head: 8 });
        // Insert exactly at the end: stays outside too.
        let ops = vec![TextOperation::ins(6, "zz")];
        let out = transform_selection(sel, &ops);
        assert_eq!(out, Selection { anchor: 2, head: 6 });
    }

    #[test]
    fn reversed_selection_keeps_direction() {
        let sel = Selection { anchor: 6, head: 2 };
        let ops = vec![TextOperation::ins(0, "abc")];
        let out = transform_selection(sel, &ops);
        assert_eq!(out, Selection { anchor: 9, head: 5 });
    }

    #[test]
    fn selection_swallowed_by_delete_collapses() {
        let sel = Selection { anchor: 3, head: 5 };
        let ops = vec![TextOperation::del(2, 6)];
        let out = transform_selection(sel, &ops);
        assert!(out.is_caret());
        assert_eq!(out.head, 2);
    }

    #[test]
    fn cursor_survives_remote_merge_end_to_end() {
        // An editor at version v with a caret; remote events arrive; the
        // caret must land on the same character.
        let mut oplog = OpLog::new();
        let a = oplog.get_or_create_agent("alice");
        let b = oplog.get_or_create_agent("bob");
        oplog.add_insert(a, 0, "The brown fox");
        let v = oplog.version().clone();
        // Local caret sits before "fox" (index 10).
        let caret = 10;
        // Remote: bob prepends "quick " at 4.
        oplog.add_insert_at(b, &v, 4, "quick ");
        let tip = oplog.version().clone();
        let ops = oplog.diff_versions(&v, &tip);
        let moved = transform_position_all(caret, &ops, Bias::Left);
        let text = oplog.checkout_tip().content.to_string();
        assert_eq!(&text[moved..moved + 3], "fox");
    }

    #[test]
    fn caret_at_doc_end() {
        let op = TextOperation::ins(5, "!");
        assert_eq!(transform_position(5, &op, Bias::Right), 6);
        let op = TextOperation::del(3, 2);
        assert_eq!(transform_position(5, &op, Bias::Left), 3);
    }
}
