//! Deterministic random editing-history generation for tests and fuzzing.
//!
//! Simulates a handful of replicas concurrently editing a document:
//! each step either applies a local edit at a replica's current version or
//! merges another replica's version. The result is an [`OpLog`] with a
//! realistic mix of linear runs, short-lived branches and merges — the raw
//! material for the convergence and equivalence property tests.

use crate::reference::replay_reference_version;
use crate::OpLog;
use eg_dag::Frontier;

/// A tiny deterministic xorshift generator (no external dependencies so the
/// module can be used from every crate's tests without feature wiring).
#[derive(Debug, Clone)]
pub struct SmallRng(u64);

impl SmallRng {
    /// Seeds the generator. Equal seeds yield equal sequences.
    pub fn new(seed: u64) -> Self {
        SmallRng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// A uniform value in `[0, bound)` (`bound` must be nonzero).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() >> 16) as usize % bound
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One simulated replica: its current version and the document text at it.
#[derive(Debug, Clone)]
struct SimReplica {
    frontier: Frontier,
    doc: Vec<char>,
}

/// Generates a random editing history.
///
/// * `steps`: number of simulation steps (each is one op run or one merge).
/// * `num_replicas`: concurrent editors.
/// * `merge_prob`: probability that a step merges instead of editing;
///   higher values produce more concurrency.
pub fn random_oplog(seed: u64, steps: usize, num_replicas: usize, merge_prob: f64) -> OpLog {
    random_oplog_prefixed(seed, steps, num_replicas, merge_prob, "agent")
}

/// [`random_oplog`] with a custom agent-name prefix, so that independently
/// generated logs use disjoint ID spaces (event IDs must be globally
/// unique, paper §2.2).
pub fn random_oplog_prefixed(
    seed: u64,
    steps: usize,
    num_replicas: usize,
    merge_prob: f64,
    prefix: &str,
) -> OpLog {
    let mut rng = SmallRng::new(seed);
    let mut oplog = OpLog::new();
    let agents: Vec<_> = (0..num_replicas)
        .map(|i| oplog.get_or_create_agent(&format!("{prefix}{i}")))
        .collect();
    let mut replicas: Vec<SimReplica> = (0..num_replicas)
        .map(|_| SimReplica {
            frontier: Frontier::root(),
            doc: Vec::new(),
        })
        .collect();
    // Mixed UTF-8 widths (1–4 bytes: ASCII, é, √/→/日, 🦀) so the content
    // arena's char→byte translation is exercised at every boundary.
    let alphabet: Vec<char> = "abcdefghij OX√é→日本🦀".chars().collect();

    for _ in 0..steps {
        let r = rng.below(num_replicas);
        if num_replicas > 1 && rng.unit_f64() < merge_prob {
            // Merge a random other replica's version into r.
            let mut o = rng.below(num_replicas);
            if o == r {
                o = (o + 1) % num_replicas;
            }
            let other_frontier = replicas[o].frontier.clone();
            let merged = oplog
                .graph
                .version_union(&replicas[r].frontier, &other_frontier);
            if merged != replicas[r].frontier {
                replicas[r].doc = replay_reference_version(&oplog, &merged).chars().collect();
                replicas[r].frontier = merged;
            }
            continue;
        }
        let len = replicas[r].doc.len();
        let roll = rng.unit_f64();
        if len == 0 || roll < 0.55 {
            // Insert a small run.
            let pos = rng.below(len + 1);
            let n = 1 + rng.below(4);
            let text: String = (0..n)
                .map(|_| alphabet[rng.below(alphabet.len())])
                .collect();
            let parents = replicas[r].frontier.clone();
            let lvs = oplog.add_insert_at(agents[r], &parents, pos, &text);
            let chars: Vec<char> = text.chars().collect();
            for (i, c) in chars.into_iter().enumerate() {
                replicas[r].doc.insert(pos + i, c);
            }
            replicas[r].frontier = Frontier::new_1(lvs.last());
        } else if roll < 0.85 {
            // Forward delete.
            let pos = rng.below(len);
            let n = (1 + rng.below(4)).min(len - pos);
            let parents = replicas[r].frontier.clone();
            let lvs = oplog.add_delete_at(agents[r], &parents, pos, n);
            replicas[r].doc.drain(pos..pos + n);
            replicas[r].frontier = Frontier::new_1(lvs.last());
        } else {
            // Backspace run.
            let pos = rng.below(len);
            let n = (1 + rng.below(3)).min(pos + 1);
            let parents = replicas[r].frontier.clone();
            let lvs = oplog.add_backspace_at(agents[r], &parents, pos, n);
            replicas[r].doc.drain(pos + 1 - n..pos + 1);
            replicas[r].frontier = Frontier::new_1(lvs.last());
        }
    }
    oplog
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let a = random_oplog(7, 50, 3, 0.3);
        let b = random_oplog(7, 50, 3, 0.3);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.version(), b.version());
    }

    #[test]
    fn generator_produces_concurrency() {
        let log = random_oplog(11, 120, 3, 0.4);
        // At least one event should have multiple parents (a merge) or the
        // graph should have several runs.
        assert!(log.graph.num_entries() > 1);
    }

    #[test]
    fn zero_merge_prob_single_replica_is_linear() {
        let log = random_oplog(3, 60, 1, 0.0);
        assert_eq!(log.graph.num_entries(), 1);
    }
}
