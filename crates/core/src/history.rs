//! History inspection: blame, version-to-version diffs, and scrubbing.
//!
//! "Since Eg-walker stores a fine-grained editing history of a document, it
//! allows applications to show that history to the user, and to restore
//! arbitrary past versions of a document by replaying subsets of the graph"
//! (paper §6). This module implements those applications on top of the
//! walker:
//!
//! * [`OpLog::blame`] attributes every character of the document to the
//!   event (and thus author) that inserted it;
//! * [`OpLog::diff_versions`] computes the index-based operations that take
//!   the document at one version to another — the incremental update of
//!   §2.4, exposed as an API;
//! * [`Scrubber`] steps through the document's states event by event, the
//!   building block of a history slider UI.
//!
//! Everything here is derived by replay; nothing adds persistent state.

use crate::op::{ListOpKind, TextOperation};
use crate::walker::{self, WalkerOpts};
use crate::OpLog;
use eg_dag::LV;
use eg_rle::{DTRange, HasLength};
use eg_rope::Rope;

/// A run of consecutive document characters inserted by one run of events
/// from one author.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrSpan {
    /// The inserting events (one per character, consecutive LVs).
    pub lvs: DTRange,
    /// The author (agent name) of those events.
    pub agent: String,
}

impl AttrSpan {
    /// The number of characters covered.
    pub fn len(&self) -> usize {
        self.lvs.len()
    }

    /// Returns `true` if the span covers no characters (never produced).
    pub fn is_empty(&self) -> bool {
        self.lvs.is_empty()
    }
}

impl OpLog {
    /// Attributes each character of the current document to its inserting
    /// event, run-length compressed in document order.
    ///
    /// The concatenated span lengths equal the document length. Cost is a
    /// full replay plus `O(n)` per operation for the attribution splice —
    /// acceptable for interactive "blame" displays, not for hot paths.
    pub fn blame(&self) -> Vec<AttrSpan> {
        self.blame_at(&self.version().clone())
    }

    /// [`OpLog::blame`] for the document as of an arbitrary version.
    pub fn blame_at(&self, version: &[LV]) -> Vec<AttrSpan> {
        let (_, ops) = walker::transformed_ops(self, &[], version, WalkerOpts::default());
        // One inserting LV per character of the evolving document.
        let mut attr: Vec<LV> = Vec::new();
        for (lvs, op) in &ops {
            match op.kind {
                ListOpKind::Ins => {
                    attr.splice(op.pos..op.pos, lvs.iter());
                }
                ListOpKind::Del => {
                    attr.drain(op.pos..op.pos + op.len);
                }
            }
        }
        // RLE-compress: consecutive chars from consecutive LVs of the same
        // agent span collapse.
        let mut spans: Vec<AttrSpan> = Vec::new();
        for lv in attr {
            if let Some(last) = spans.last_mut() {
                if last.lvs.end == lv {
                    let span = self.agents.lv_to_agent_span(lv);
                    if self.agents.agent_name(span.agent) == last.agent {
                        last.lvs.end += 1;
                        continue;
                    }
                }
            }
            let span = self.agents.lv_to_agent_span(lv);
            spans.push(AttrSpan {
                lvs: (lv..lv + 1).into(),
                agent: self.agents.agent_name(span.agent).to_string(),
            });
        }
        spans
    }

    /// The operations that take the document at version `from` to the
    /// document at version `from ∪ to`, in application order.
    ///
    /// This is the incremental update a text editor applies when remote
    /// events arrive (paper §2.4): indexes are already transformed against
    /// everything `from` knows.
    pub fn diff_versions(&self, from: &[LV], to: &[LV]) -> Vec<TextOperation> {
        let (_, ops) = walker::transformed_ops(self, from, to, WalkerOpts::default());
        ops.into_iter().map(|(_, op)| op).collect()
    }

    /// The name of the agent that generated event `lv`.
    pub fn agent_name_of(&self, lv: LV) -> &str {
        let span = self.agents.lv_to_agent_span(lv);
        self.agents.agent_name(span.agent)
    }
}

/// Steps through a document's history one transformed character at a time.
///
/// The scrubber replays the whole graph once up front, recording the
/// transformed (rebased) operations. A *step* is one effective
/// single-character operation: an insertion, or a deletion that actually
/// removes a character (concurrent double-deletes are transformed into
/// no-ops and do not count). Seeking forward applies steps incrementally;
/// seeking backward restarts from the empty document (transformed
/// operations replay forward only).
///
/// # Examples
///
/// ```
/// use egwalker::{history::Scrubber, OpLog};
/// let mut oplog = OpLog::new();
/// let a = oplog.get_or_create_agent("alice");
/// oplog.add_insert(a, 0, "abc");
/// oplog.add_delete(a, 0, 1);
/// let mut scrub = Scrubber::new(&oplog);
/// assert_eq!(scrub.seek(3), "abc");
/// assert_eq!(scrub.seek(4), "bc");
/// assert_eq!(scrub.seek(0), "");
/// ```
#[derive(Debug)]
pub struct Scrubber {
    /// Transformed operation runs in replay order.
    ops: Vec<TextOperation>,
    /// Total number of steps (sum of run lengths).
    num_steps: usize,
    doc: Rope,
    /// Number of steps reflected in `doc`.
    cursor: usize,
    /// Index of the first run not fully applied.
    next_op: usize,
    /// Units of `ops[next_op]` already applied.
    op_offset: usize,
}

impl Scrubber {
    /// Replays `oplog` and prepares for scrubbing.
    pub fn new(oplog: &OpLog) -> Self {
        let tip = oplog.version().clone();
        let (_, ops) = walker::transformed_ops(oplog, &[], &tip, WalkerOpts::default());
        let ops: Vec<TextOperation> = ops.into_iter().map(|(_, op)| op).collect();
        let num_steps = ops.iter().map(|op| op.len).sum();
        Scrubber {
            ops,
            num_steps,
            doc: Rope::new(),
            cursor: 0,
            next_op: 0,
            op_offset: 0,
        }
    }

    /// The number of steps in the history (valid seek positions are
    /// `0..=num_steps`).
    pub fn num_steps(&self) -> usize {
        self.num_steps
    }

    /// The document text after the first `k` steps of the replay order.
    ///
    /// # Panics
    ///
    /// Panics if `k > self.num_steps()`.
    pub fn seek(&mut self, k: usize) -> String {
        assert!(k <= self.num_steps, "seek beyond history");
        if k < self.cursor {
            self.doc = Rope::new();
            self.cursor = 0;
            self.next_op = 0;
            self.op_offset = 0;
        }
        let mut remaining = k - self.cursor;
        while remaining > 0 {
            let op = &self.ops[self.next_op];
            let available = op.len - self.op_offset;
            let take = remaining.min(available);
            slice_op(op, self.op_offset, take).apply_to(&mut self.doc);
            self.op_offset += take;
            remaining -= take;
            if self.op_offset == op.len {
                self.next_op += 1;
                self.op_offset = 0;
            }
        }
        self.cursor = k;
        self.doc.to_string()
    }
}

/// Units `[from, from + take)` of a transformed operation, as their own
/// operation (adjusted so it applies after the first `from` units already
/// did).
fn slice_op(op: &TextOperation, from: usize, take: usize) -> TextOperation {
    debug_assert!(from + take <= op.len && take > 0);
    match op.kind {
        ListOpKind::Ins => {
            let content: String = op
                .content
                .as_deref()
                .unwrap_or("")
                .chars()
                .skip(from)
                .take(take)
                .collect();
            TextOperation::ins(op.pos + from, content)
        }
        // A transformed delete run acts repeatedly at the same index.
        ListOpKind::Del => TextOperation::del(op.pos, take),
    }
}

/// Restores the document at a version as its own oplog-free string —
/// convenience wrapper around [`OpLog::checkout`].
pub fn restore(oplog: &OpLog, version: &[LV]) -> String {
    oplog.checkout(version).content.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blame_single_author() {
        let mut oplog = OpLog::new();
        let a = oplog.get_or_create_agent("alice");
        oplog.add_insert(a, 0, "hello");
        let spans = oplog.blame();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].agent, "alice");
        assert_eq!(spans[0].len(), 5);
    }

    #[test]
    fn blame_two_authors_concurrent() {
        let mut oplog = OpLog::new();
        let a = oplog.get_or_create_agent("alice");
        let b = oplog.get_or_create_agent("bob");
        oplog.add_insert(a, 0, "aaaa");
        let v = oplog.version().clone();
        oplog.add_insert_at(a, &v, 4, "AAAA");
        oplog.add_insert_at(b, &v, 0, "bbbb");
        let spans = oplog.blame();
        let doc = oplog.checkout_tip().content.to_string();
        assert_eq!(spans.iter().map(AttrSpan::len).sum::<usize>(), doc.len());
        // Every span boundary corresponds to an author change or LV jump;
        // alice wrote 8 chars, bob 4.
        let alice: usize = spans
            .iter()
            .filter(|s| s.agent == "alice")
            .map(AttrSpan::len)
            .sum();
        let bob: usize = spans
            .iter()
            .filter(|s| s.agent == "bob")
            .map(AttrSpan::len)
            .sum();
        assert_eq!(alice, 8);
        assert_eq!(bob, 4);
    }

    #[test]
    fn blame_excludes_deleted() {
        let mut oplog = OpLog::new();
        let a = oplog.get_or_create_agent("alice");
        oplog.add_insert(a, 0, "abcdef");
        oplog.add_delete(a, 1, 3);
        let spans = oplog.blame();
        assert_eq!(spans.iter().map(AttrSpan::len).sum::<usize>(), 3);
        // Chars 'a', 'e', 'f' remain: LVs 0, 4, 5 — two spans (0) and (4,5).
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].lvs, (0..1).into());
        assert_eq!(spans[1].lvs, (4..6).into());
    }

    #[test]
    fn blame_at_old_version() {
        let mut oplog = OpLog::new();
        let a = oplog.get_or_create_agent("alice");
        let v1 = oplog.add_insert(a, 0, "abc");
        oplog.add_delete(a, 0, 3);
        let spans = oplog.blame_at(&[v1.last()]);
        assert_eq!(spans.iter().map(AttrSpan::len).sum::<usize>(), 3);
        assert!(oplog.blame().is_empty());
    }

    #[test]
    fn diff_versions_simple() {
        let mut oplog = OpLog::new();
        let a = oplog.get_or_create_agent("alice");
        let v1 = oplog.add_insert(a, 0, "base");
        oplog.add_insert(a, 4, "++");
        let tip = oplog.version().clone();
        let ops = oplog.diff_versions(&[v1.last()], &tip);
        assert_eq!(ops, vec![TextOperation::ins(4, "++")]);
    }

    #[test]
    fn diff_versions_transforms_concurrent() {
        // Figure 1: diff from user 1's view must transform user 2's insert.
        let mut oplog = OpLog::new();
        let a = oplog.get_or_create_agent("alice");
        let b = oplog.get_or_create_agent("bob");
        oplog.add_insert(a, 0, "Helo");
        let v = oplog.version().clone();
        let va = oplog.add_insert_at(a, &v, 3, "l");
        let vb = oplog.add_insert_at(b, &v, 4, "!");
        // From alice's view ("Hello"), bob's insert lands at index 5.
        let ops = oplog.diff_versions(&[va.last()], &[vb.last()]);
        assert_eq!(ops, vec![TextOperation::ins(5, "!")]);
        // From bob's view ("Helo!"), alice's insert stays at 3.
        let ops = oplog.diff_versions(&[vb.last()], &[va.last()]);
        assert_eq!(ops, vec![TextOperation::ins(3, "l")]);
    }

    #[test]
    fn diff_versions_no_change() {
        let mut oplog = OpLog::new();
        let a = oplog.get_or_create_agent("alice");
        let v = oplog.add_insert(a, 0, "x");
        assert!(oplog.diff_versions(&[v.last()], &[v.last()]).is_empty());
    }

    #[test]
    fn diff_versions_applies_cleanly() {
        let mut oplog = OpLog::new();
        let a = oplog.get_or_create_agent("alice");
        let b = oplog.get_or_create_agent("bob");
        oplog.add_insert(a, 0, "the quick brown fox");
        let v = oplog.version().clone();
        oplog.add_delete_at(a, &v, 4, 6);
        oplog.add_insert_at(b, &v, 19, " jumps");
        let tip = oplog.version().clone();

        // Apply the diff from v to a checkout at v: must equal tip text.
        let mut doc = oplog.checkout(&v);
        for op in oplog.diff_versions(&v, &tip) {
            op.apply_to(&mut doc.content);
        }
        assert_eq!(
            doc.content.to_string(),
            oplog.checkout_tip().content.to_string()
        );
    }

    #[test]
    fn scrubber_walks_history() {
        let mut oplog = OpLog::new();
        let a = oplog.get_or_create_agent("alice");
        oplog.add_insert(a, 0, "abc"); // events 0..3
        oplog.add_delete(a, 0, 1); // event 3
        oplog.add_insert(a, 2, "XY"); // events 4..6
        let mut s = Scrubber::new(&oplog);
        assert_eq!(s.num_steps(), 6);
        assert_eq!(s.seek(0), "");
        assert_eq!(s.seek(1), "a");
        assert_eq!(s.seek(2), "ab");
        assert_eq!(s.seek(3), "abc");
        assert_eq!(s.seek(4), "bc");
        assert_eq!(s.seek(5), "bcX");
        assert_eq!(s.seek(6), "bcXY");
        // Backward seeks restart transparently.
        assert_eq!(s.seek(2), "ab");
        assert_eq!(s.seek(6), "bcXY");
    }

    #[test]
    fn scrubber_final_state_matches_checkout() {
        let mut oplog = OpLog::new();
        let a = oplog.get_or_create_agent("alice");
        let b = oplog.get_or_create_agent("bob");
        oplog.add_insert(a, 0, "merge ");
        let v = oplog.version().clone();
        oplog.add_insert_at(a, &v, 6, "aaa");
        oplog.add_insert_at(b, &v, 0, "bb ");
        let mut s = Scrubber::new(&oplog);
        let end = s.seek(s.num_steps());
        assert_eq!(end, oplog.checkout_tip().content.to_string());
    }

    #[test]
    fn restore_wrapper() {
        let mut oplog = OpLog::new();
        let a = oplog.get_or_create_agent("alice");
        let v1 = oplog.add_insert(a, 0, "v1");
        oplog.add_insert(a, 2, " v2");
        assert_eq!(restore(&oplog, &[v1.last()]), "v1");
        let tip = oplog.version().clone();
        assert_eq!(restore(&oplog, &tip), "v1 v2");
    }
}
