//! Event bundles: a self-describing subset of an event graph, exchanged
//! between replicas.
//!
//! The paper's storage format persists a *whole* event graph, identifying
//! events by their index in a topological sort (§3.8). That does not work
//! for replication, where a replica sends only the events its peer is
//! missing: "references to parent events outside of that subset need to be
//! encoded using event IDs of the form (replicaID, seqNo)" (§3.8). An
//! [`EventBundle`] is exactly that encoding, still run-length compressed:
//! each [`BundleRun`] carries a run of events from one agent, the operation
//! run they performed, and the remote IDs of the *first* event's parents
//! (later events in a run chain on their predecessor).
//!
//! Bundles are pure data; [`OpLog::bundle_since`] extracts one and
//! [`OpLog::apply_bundle`] ingests one. Application is all-or-nothing: if a
//! parent is neither known locally nor supplied earlier in the bundle, the
//! bundle is rejected with the missing IDs so the caller can causally
//! buffer it (paper §2.2: "the replica waits for them to arrive").

use crate::op::{ListOpKind, OpRun};
use crate::OpLog;
use eg_dag::{AgentId, RemoteId, LV};
use eg_rle::{DTRange, HasLength, SplitableSpan};

/// A run of consecutive events from one agent, in network form.
///
/// Events `seq_start + k` for `k in 1..len` are implicitly parented on
/// their predecessor `seq_start + k - 1`; only the first event's parents
/// are spelled out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BundleRun {
    /// The generating replica's name.
    pub agent: String,
    /// First sequence number of the run.
    pub seq_start: usize,
    /// Parents of the run's first event, as remote IDs. Empty for a root
    /// event.
    pub parents: Vec<RemoteId>,
    /// Operation kind shared by the whole run.
    pub kind: ListOpKind,
    /// Target index range, in document coordinates at run start (same
    /// semantics as [`OpRun`]).
    pub loc: DTRange,
    /// Direction of the run (see [`OpRun`]).
    pub fwd: bool,
    /// Inserted text (`Ins` only; one char per event).
    pub content: Option<String>,
}

impl BundleRun {
    /// The number of events in the run.
    pub fn len(&self) -> usize {
        self.loc.len()
    }

    /// Returns `true` if the run holds no events (never produced by
    /// extraction; guarded against in application).
    pub fn is_empty(&self) -> bool {
        self.loc.is_empty()
    }
}

/// A causally-closed-above-nothing set of events in network form: every
/// parent is either inside the bundle or referenced by remote ID.
///
/// Runs appear in a topological order (parents before children).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventBundle {
    /// The event runs, topologically ordered.
    pub runs: Vec<BundleRun>,
}

impl EventBundle {
    /// Returns `true` if the bundle carries no events.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Total number of events across all runs.
    pub fn num_events(&self) -> usize {
        self.runs.iter().map(|r| r.len()).sum()
    }
}

/// A [`BundleRun`] in pre-resolved, borrowed form: agents as local
/// [`AgentId`]s, content as a borrowed slice.
///
/// This is the zero-copy shape streaming decoders hand to
/// [`OpLog::apply_run_view`] — rebuilding a document from its segment
/// store ingests thousands of runs, and materialising an owned
/// [`BundleRun`] (agent `String`, parent `RemoteId`s, content `String`)
/// for each dominates the open time.
#[derive(Debug, Clone, Copy)]
pub struct RunView<'a> {
    /// The generating agent, already interned in the target oplog.
    pub agent: AgentId,
    /// First sequence number of the run.
    pub seq_start: usize,
    /// Parents of the run's first event as `(agent, seq)` pairs, agents
    /// likewise pre-interned. Empty for a root event.
    pub parents: &'a [(AgentId, usize)],
    /// Operation kind shared by the whole run.
    pub kind: ListOpKind,
    /// Target index range (same semantics as [`BundleRun`]).
    pub loc: DTRange,
    /// Direction of the run.
    pub fwd: bool,
    /// Inserted text (`Ins` only; one char per event).
    pub content: Option<&'a str>,
}

/// Why a bundle could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BundleError {
    /// Some parents are neither known locally nor supplied by the bundle.
    /// The caller should buffer the bundle and retry once the listed events
    /// have arrived (causal delivery, paper §2.2).
    MissingParents(Vec<RemoteId>),
    /// A run was structurally invalid (empty, or an insert without content
    /// of matching length).
    Malformed(&'static str),
}

impl std::fmt::Display for BundleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BundleError::MissingParents(ids) => {
                write!(f, "bundle depends on {} unknown event(s): ", ids.len())?;
                for (i, id) in ids.iter().take(3).enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "({}, {})", id.agent, id.seq)?;
                }
                if ids.len() > 3 {
                    write!(f, ", …")?;
                }
                Ok(())
            }
            BundleError::Malformed(why) => write!(f, "malformed bundle: {why}"),
        }
    }
}

impl std::error::Error for BundleError {}

/// The byte offset of the `n`-th character of `s` (or `s.len()` when `n`
/// equals the char count).
fn char_boundary(s: &str, n: usize) -> usize {
    s.char_indices().nth(n).map(|(b, _)| b).unwrap_or(s.len())
}

impl OpLog {
    /// Extracts the events this oplog knows that are **not** in the history
    /// of `have` (a version expressed as remote IDs, e.g. a peer's
    /// [`OpLog::version_vector`] or [`OpLog::remote_version`]).
    ///
    /// Remote IDs in `have` ahead of this replica's knowledge are *clamped*
    /// to the local per-agent maximum rather than ignored: an agent's
    /// events form a causal chain, so a peer holding `(a, n)` holds every
    /// `(a, m ≤ n)`, and crediting it with our latest event from `a` is
    /// always sound. Only agents this replica has never seen at all carry
    /// no information. Clamping matters after a partition: the side that
    /// kept editing sends digest entries the other side has never seen,
    /// and without clamping the response degenerates to a near-full
    /// re-send (deduplicated on arrival, but wasted bytes on the wire).
    ///
    /// Digest fast path: anti-entropy rounds overwhelmingly probe peers
    /// that are already caught up, so when every tip of the local version
    /// appears in `have` the graph walk (dominators + diff + run
    /// extraction) is skipped entirely.
    pub fn bundle_since(&self, have: &[RemoteId]) -> EventBundle {
        let known: Vec<LV> = have
            .iter()
            .filter_map(|id| self.clamp_remote_to_lv(id))
            .collect();
        if self.version().iter().all(|tip| known.contains(tip)) {
            return EventBundle::default();
        }
        let frontier = self.graph.find_dominators(&known);
        if frontier == *self.version() {
            return EventBundle::default();
        }
        self.bundle_since_local(&frontier)
    }

    /// [`OpLog::bundle_since`] for a local frontier: extracts the events in
    /// the current version's history but not in `Events(have)`.
    pub fn bundle_since_local(&self, have: &[LV]) -> EventBundle {
        if have == self.version().as_slice() {
            return EventBundle::default();
        }
        let diff = self.graph.diff(have, self.version());
        debug_assert!(diff.only_a.is_empty());
        let mut runs = Vec::new();
        for &range in diff.only_b.iter() {
            self.push_bundle_runs(range, &mut runs);
        }
        EventBundle { runs }
    }

    /// Converts one ascending LV range into bundle runs, splitting wherever
    /// the agent run, the op run, or the parent chain breaks.
    fn push_bundle_runs(&self, range: DTRange, runs: &mut Vec<BundleRun>) {
        let mut lv = range.start;
        while lv < range.end {
            let agent_span = self.agents.lv_to_agent_span(lv);
            let (op_lvs, op_run) = self.op_at(lv);
            let (entry, entry_offset) = self.graph.entry_for(lv);
            let entry_left = entry.span.end - lv;

            let len = (range.end - lv)
                .min(agent_span.seq_range.len())
                .min(op_lvs.len())
                .min(entry_left);
            debug_assert!(len > 0);

            let mut op = op_run;
            if op.len() > len {
                op.truncate(len);
            }
            let parents: Vec<RemoteId> = if entry_offset == 0 {
                entry
                    .parents
                    .iter()
                    .map(|&p| self.lv_to_remote(p))
                    .collect()
            } else {
                vec![self.lv_to_remote(lv - 1)]
            };
            runs.push(BundleRun {
                agent: self.agents.agent_name(agent_span.agent).to_string(),
                seq_start: agent_span.seq_range.start,
                parents,
                kind: op.kind,
                loc: op.loc,
                fwd: op.fwd,
                content: op.content.map(|c| self.content_slice(c).to_string()),
            });
            lv += len;
        }
    }

    /// Ingests an event bundle, deduplicating events this log already
    /// knows.
    ///
    /// Returns the LV range newly assigned (possibly empty, if every event
    /// was already known). Application is all-or-nothing: on
    /// [`BundleError::MissingParents`] the oplog is unchanged.
    pub fn apply_bundle(&mut self, bundle: &EventBundle) -> Result<DTRange, BundleError> {
        self.check_bundle(bundle)?;
        let first_new = self.len();
        for run in &bundle.runs {
            self.apply_bundle_run(run);
        }
        Ok((first_new..self.len()).into())
    }

    /// Validates a bundle without mutating the log: structure plus causal
    /// readiness (every parent known locally or supplied earlier in the
    /// bundle).
    pub fn check_bundle(&self, bundle: &EventBundle) -> Result<(), BundleError> {
        // Seq ranges the bundle itself provides, grouped per agent. Runs
        // from one agent arrive seq-ascending when extracted by
        // `bundle_since`, but a hand-built bundle need not be sorted, so
        // sort before binary searching. This stays O(runs log runs) where
        // the old per-event set was O(events) hash inserts — the
        // difference is most of a cold segment-store open.
        let mut provided: std::collections::HashMap<&str, Vec<DTRange>> =
            std::collections::HashMap::new();
        for r in &bundle.runs {
            provided
                .entry(r.agent.as_str())
                .or_default()
                .push((r.seq_start..r.seq_start + r.len()).into());
        }
        for ranges in provided.values_mut() {
            ranges.sort_unstable_by_key(|r| r.start);
        }
        let provides = |id: &RemoteId| -> bool {
            provided.get(id.agent.as_str()).is_some_and(|ranges| {
                let i = ranges.partition_point(|r| r.end <= id.seq);
                ranges.get(i).is_some_and(|r| r.start <= id.seq)
            })
        };
        let mut missing = Vec::new();
        for run in &bundle.runs {
            if run.is_empty() {
                return Err(BundleError::Malformed("empty run"));
            }
            match (run.kind, &run.content) {
                (ListOpKind::Ins, Some(text)) => {
                    if text.chars().count() != run.len() {
                        return Err(BundleError::Malformed("content length mismatch"));
                    }
                }
                (ListOpKind::Ins, None) => {
                    return Err(BundleError::Malformed("insert run without content"));
                }
                (ListOpKind::Del, Some(_)) => {
                    return Err(BundleError::Malformed("delete run with content"));
                }
                (ListOpKind::Del, None) => {}
            }
            if !run.fwd && run.kind == ListOpKind::Ins && run.len() > 1 {
                return Err(BundleError::Malformed("multi-event backward insert run"));
            }
            for parent in &run.parents {
                let known = self.agents.knows(parent) || provides(parent);
                if !known && !missing.contains(parent) {
                    missing.push(parent.clone());
                }
            }
        }
        if missing.is_empty() {
            Ok(())
        } else {
            Err(BundleError::MissingParents(missing))
        }
    }

    /// Ingests one (pre-validated) run, skipping already-known events.
    fn apply_bundle_run(&mut self, run: &BundleRun) {
        let agent = self.get_or_create_agent(&run.agent);
        // Parents resolve through agents that exist by now: either known
        // before the bundle, or created when their earlier run applied
        // (runs are topologically ordered).
        let parents: Vec<(AgentId, usize)> = run
            .parents
            .iter()
            .map(|p| (self.agents.agent_id(&p.agent).expect("validated"), p.seq))
            .collect();
        let view = RunView {
            agent,
            seq_start: run.seq_start,
            parents: &parents,
            kind: run.kind,
            loc: run.loc,
            fwd: run.fwd,
            content: run.content.as_deref(),
        };
        self.apply_run_view(&view).expect("validated");
    }

    /// Ingests one run in pre-resolved borrowed form, skipping
    /// already-known events. This is the zero-copy core of bundle
    /// application, shared by [`OpLog::apply_bundle`] and streaming
    /// decoders ([`RunView`]).
    ///
    /// Unlike [`OpLog::apply_bundle`], validation is per run: an error on
    /// the N-th run of a stream leaves the earlier runs applied. Use it
    /// when the whole log is discarded on failure (rebuilding from a
    /// segment file) or when runs are independently committed.
    pub fn apply_run_view(&mut self, run: &RunView<'_>) -> Result<(), BundleError> {
        let run_len = run.loc.len();
        if run_len == 0 {
            return Err(BundleError::Malformed("empty run"));
        }
        if run.seq_start.checked_add(run_len).is_none() {
            return Err(BundleError::Malformed("sequence range overflow"));
        }
        match (run.kind, run.content) {
            (ListOpKind::Ins, Some(text)) => {
                if text.chars().count() != run_len {
                    return Err(BundleError::Malformed("content length mismatch"));
                }
            }
            (ListOpKind::Ins, None) => {
                return Err(BundleError::Malformed("insert run without content"));
            }
            (ListOpKind::Del, Some(_)) => {
                return Err(BundleError::Malformed("delete run with content"));
            }
            (ListOpKind::Del, None) => {}
        }
        if !run.fwd && run.kind == ListOpKind::Ins && run_len > 1 {
            return Err(BundleError::Malformed("multi-event backward insert run"));
        }
        // Resolve the head parents up front: every one must already be
        // ingested (causal order). Failing here — before any mutation of
        // this run lands — keeps single-run application atomic. The
        // buffer is a reused oplog scratch: this runs once per ingested
        // run and must not allocate.
        let mut head_parents = std::mem::take(&mut self.parents_scratch);
        head_parents.clear();
        for &(agent, seq) in run.parents {
            match self.agents.try_remote_to_lv(agent, seq) {
                Some(lv) => head_parents.push(lv),
                None => {
                    self.parents_scratch = head_parents;
                    return Err(BundleError::MissingParents(vec![RemoteId {
                        agent: self.agents.agent_name(agent).to_string(),
                        seq,
                    }]));
                }
            }
        }

        let mut offset = 0;
        while offset < run_len {
            let seq = run.seq_start + offset;
            // One extent lookup classifies a whole chunk: the common
            // cases (entirely-new run, exact duplicate delivery) resolve
            // in a single binary search instead of one probe per event.
            let chunk_len = match self.agents.seq_extent(run.agent, seq) {
                Ok((_, known_len)) => {
                    // Duplicate delivery; events are immutable, so skip.
                    offset += known_len.min(run_len - offset);
                    continue;
                }
                Err(gap) => gap.min(run_len - offset),
            };

            // Slice the op run down to `[offset, offset + chunk_len)`.
            let mut op = OpRun {
                kind: run.kind,
                loc: run.loc,
                fwd: run.fwd,
                content: None,
            };
            if offset > 0 {
                op.truncate_keeping_right(offset);
            }
            if op.len() > chunk_len {
                op.truncate(chunk_len);
            }

            // Register inserted content: slice the run's text down to the
            // chunk's chars and push the UTF-8 bytes straight in.
            if run.kind == ListOpKind::Ins {
                let text = run.content.expect("validated above");
                let byte_start = char_boundary(text, offset);
                let byte_end = char_boundary(&text[byte_start..], chunk_len) + byte_start;
                op.content = Some(self.ins_content.push_str(&text[byte_start..byte_end]));
            }

            // Resolve parents: explicit for the run head, predecessor chain
            // otherwise. Both are plain slices — `graph.push` reduces to
            // dominators itself, so materialising a `Frontier` here would
            // be a per-run allocation for nothing.
            let pred;
            let parents: &[LV] = if offset == 0 {
                &head_parents
            } else {
                pred = [self
                    .agents
                    .try_remote_to_lv(run.agent, seq - 1)
                    .expect("predecessor ingested")];
                &pred
            };

            let lv_start = self.len();
            let lvs: DTRange = (lv_start..lv_start + chunk_len).into();
            self.push_op(lvs, op, parents);
            self.graph.push(parents, lvs);
            self.agents
                .assign_at(run.agent, (seq..seq + chunk_len).into(), lvs);
            offset += chunk_len;
        }
        self.parents_scratch = head_parents;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_replica_logs() -> (OpLog, OpLog) {
        let mut a = OpLog::new();
        let alice = a.get_or_create_agent("alice");
        a.add_insert(alice, 0, "shared base ");
        let b = a.clone();
        (a, b)
    }

    #[test]
    fn bundle_roundtrip_simple() {
        let (mut a, mut b) = two_replica_logs();
        let alice = a.get_or_create_agent("alice");
        a.add_insert(alice, 12, "from alice");

        let bundle = a.bundle_since(&b.remote_version());
        assert_eq!(bundle.num_events(), 10);
        assert_eq!(bundle.runs.len(), 1);
        let new = b.apply_bundle(&bundle).unwrap();
        assert_eq!(new.len(), 10);
        assert_eq!(
            b.checkout_tip().content.to_string(),
            a.checkout_tip().content.to_string()
        );
    }

    #[test]
    fn bundle_since_fast_path_on_caught_up_digest() {
        // A peer whose digest names our exact frontier gets an empty
        // bundle without a graph diff (the quiescent anti-entropy case).
        let (a, b) = two_replica_logs();
        assert!(a.bundle_since(&b.remote_version()).is_empty());
        // Extra unknown ids in the digest don't defeat the fast path.
        let mut digest = a.remote_version();
        digest.push(RemoteId {
            agent: "stranger".into(),
            seq: 3,
        });
        assert!(a.bundle_since(&digest).is_empty());
        // An empty oplog has nothing to send to anyone.
        assert!(OpLog::new().bundle_since(&[]).is_empty());
    }

    #[test]
    fn bundle_since_excludes_known() {
        let (mut a, b) = two_replica_logs();
        let alice = a.get_or_create_agent("alice");
        a.add_insert(alice, 0, "x");
        let bundle = a.bundle_since(&b.remote_version());
        // Only the new event, not the shared base.
        assert_eq!(bundle.num_events(), 1);
    }

    #[test]
    fn bundle_concurrent_merge_converges() {
        let (mut a, mut b) = two_replica_logs();
        let alice = a.get_or_create_agent("alice");
        let bob = b.get_or_create_agent("bob");
        a.add_insert(alice, 0, "A-side ");
        a.add_delete(alice, 10, 2);
        b.add_insert(bob, 12, "B-side");
        b.add_insert(bob, 0, "| ");

        let to_b = a.bundle_since(&b.remote_version());
        let to_a = b.bundle_since(&a.remote_version());
        b.apply_bundle(&to_b).unwrap();
        a.apply_bundle(&to_a).unwrap();
        assert_eq!(
            a.checkout_tip().content.to_string(),
            b.checkout_tip().content.to_string()
        );
        // Frontiers are LV-ordered and LVs are replica-local; compare the
        // remote versions as sets.
        let mut va = a.remote_version();
        let mut vb = b.remote_version();
        va.sort();
        vb.sort();
        assert_eq!(va, vb);
    }

    #[test]
    fn missing_parents_rejected_atomically() {
        let (mut a, mut b) = two_replica_logs();
        let alice = a.get_or_create_agent("alice");
        a.add_insert(alice, 0, "one");
        let v_mid = a.remote_version();
        a.add_insert(alice, 0, "two");

        // Bundle containing only the second batch: depends on the first.
        let late = a.bundle_since(&v_mid);
        let before_len = b.len();
        let err = b.apply_bundle(&late).unwrap_err();
        match err {
            BundleError::MissingParents(ids) => {
                assert!(ids.iter().all(|id| id.agent == "alice"));
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert_eq!(b.len(), before_len, "rejected bundle must not mutate");

        // Delivering the earlier events first unblocks it.
        let early = a.bundle_since(&b.remote_version());
        // `early` includes both batches (b's version predates both); apply
        // then retry the late bundle as a duplicate.
        b.apply_bundle(&early).unwrap();
        let dup = b.apply_bundle(&late).unwrap();
        assert!(dup.is_empty());
        assert_eq!(
            a.checkout_tip().content.to_string(),
            b.checkout_tip().content.to_string()
        );
    }

    #[test]
    fn duplicate_delivery_is_idempotent() {
        let (mut a, mut b) = two_replica_logs();
        let alice = a.get_or_create_agent("alice");
        a.add_insert(alice, 0, "dup");
        let bundle = a.bundle_since(&b.remote_version());
        assert_eq!(b.apply_bundle(&bundle).unwrap().len(), 3);
        assert!(b.apply_bundle(&bundle).unwrap().is_empty());
        assert_eq!(b.len(), a.len());
    }

    #[test]
    fn partial_overlap_applies_suffix() {
        let (mut a, mut b) = two_replica_logs();
        let alice = a.get_or_create_agent("alice");
        a.add_insert(alice, 0, "abc");
        let v1 = b.remote_version();
        let first = a.bundle_since(&v1);
        b.apply_bundle(&first).unwrap();
        a.add_insert(alice, 3, "def");
        // Bundle from the *old* version overlaps what b already has.
        let overlapping = a.bundle_since(&v1);
        assert_eq!(overlapping.num_events(), 6);
        let new = b.apply_bundle(&overlapping).unwrap();
        assert_eq!(new.len(), 3);
        assert_eq!(
            b.checkout_tip().content.to_string(),
            a.checkout_tip().content.to_string()
        );
    }

    #[test]
    fn backspace_runs_roundtrip() {
        let (mut a, mut b) = two_replica_logs();
        let alice = a.get_or_create_agent("alice");
        let parents = a.version().clone();
        a.add_backspace_at(alice, &parents, 11, 4);
        let bundle = a.bundle_since(&b.remote_version());
        b.apply_bundle(&bundle).unwrap();
        assert_eq!(
            b.checkout_tip().content.to_string(),
            a.checkout_tip().content.to_string()
        );
    }

    #[test]
    fn malformed_bundles_rejected() {
        let (_, mut b) = two_replica_logs();
        let bad = EventBundle {
            runs: vec![BundleRun {
                agent: "alice".into(),
                seq_start: 50,
                parents: vec![],
                kind: ListOpKind::Ins,
                loc: (0..3).into(),
                fwd: true,
                content: Some("xy".into()), // Wrong length.
            }],
        };
        assert!(matches!(
            b.apply_bundle(&bad),
            Err(BundleError::Malformed(_))
        ));

        let bad = EventBundle {
            runs: vec![BundleRun {
                agent: "alice".into(),
                seq_start: 50,
                parents: vec![],
                kind: ListOpKind::Del,
                loc: (0..1).into(),
                fwd: true,
                content: Some("x".into()),
            }],
        };
        assert!(matches!(
            b.apply_bundle(&bad),
            Err(BundleError::Malformed(_))
        ));
    }

    #[test]
    fn intra_bundle_dependencies_resolve() {
        // A bundle whose second run is parented on its first run must apply
        // even though neither event is known beforehand.
        let mut a = OpLog::new();
        let alice = a.get_or_create_agent("alice");
        a.add_insert(alice, 0, "seed");
        let mut b = OpLog::new();
        let bundle = a.bundle_since(&b.remote_version());
        b.apply_bundle(&bundle).unwrap();
        assert_eq!(b.checkout_tip().content.to_string(), "seed");
    }
}
