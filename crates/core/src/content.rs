//! [`ContentArena`]: the oplog's storage for inserted text.
//!
//! Every inserted character is appended here, in LV order of the insert
//! events; operation runs reference their text as **char-index** ranges
//! ([`crate::OpRun::content`]). The text lives in one UTF-8 `String` — not
//! a `Vec<char>` — so a content lookup borrows a `&str` slice straight out
//! of the arena instead of collecting a fresh `String`, and storage costs
//! bytes-of-UTF-8 rather than 4 bytes per character. Char ranges translate
//! to byte ranges through an RLE char→byte index
//! ([`eg_rle::CharWidthIndex`]): real text is long runs of
//! uniform-encoded-width characters, so the index stays tiny and lookups
//! are a binary search over runs.

use eg_rle::{CharWidthIndex, DTRange};

/// An append-only UTF-8 arena addressed by character index.
///
/// # Examples
///
/// ```
/// use egwalker::content::ContentArena;
/// let mut arena = ContentArena::new();
/// let r = arena.push_str("héllo");
/// assert_eq!(r, (0..5).into());
/// assert_eq!(arena.slice((1..3).into()), "él");
/// assert_eq!(arena.char_at(1), 'é');
/// ```
#[derive(Debug, Clone, Default)]
pub struct ContentArena {
    /// The concatenated inserted text.
    text: String,
    /// Char index → byte offset of `text`.
    index: CharWidthIndex,
}

impl ContentArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// The number of characters stored.
    pub fn len_chars(&self) -> usize {
        self.index.len_chars()
    }

    /// The number of UTF-8 bytes stored.
    pub fn len_bytes(&self) -> usize {
        self.text.len()
    }

    /// Returns `true` if no characters have been stored.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// Appends `s`, returning the char range it now occupies.
    pub fn push_str(&mut self, s: &str) -> DTRange {
        let start = self.index.len_chars();
        self.text.push_str(s);
        self.index.append_str(s);
        (start..self.index.len_chars()).into()
    }

    /// Appends one character, returning its char index.
    pub fn push_char(&mut self, c: char) -> usize {
        let at = self.index.len_chars();
        self.text.push(c);
        self.index.append_char_width(c.len_utf8());
        at
    }

    /// The stored text of a char range, borrowed from the arena.
    ///
    /// # Panics
    ///
    /// Panics if the range reaches past the stored characters.
    pub fn slice(&self, range: DTRange) -> &str {
        &self.text[self.index.byte_range(range.start..range.end)]
    }

    /// The character at a char index.
    ///
    /// # Panics
    ///
    /// Panics if `char_idx >= self.len_chars()`.
    pub fn char_at(&self, char_idx: usize) -> char {
        let byte = self.index.byte_of_char(char_idx);
        self.text[byte..].chars().next().expect("index in bounds")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_arena() {
        let arena = ContentArena::new();
        assert!(arena.is_empty());
        assert_eq!(arena.len_chars(), 0);
        assert_eq!(arena.slice((0..0).into()), "");
    }

    #[test]
    fn ascii_roundtrip() {
        let mut arena = ContentArena::new();
        let a = arena.push_str("hello ");
        let b = arena.push_str("world");
        assert_eq!(a, (0..6).into());
        assert_eq!(b, (6..11).into());
        assert_eq!(arena.slice(a), "hello ");
        assert_eq!(arena.slice(b), "world");
        assert_eq!(arena.slice((4..8).into()), "o wo");
        assert_eq!(arena.char_at(6), 'w');
    }

    /// Byte-level equivalence with the seed's `Vec<char>` semantics: a
    /// char-range slice equals collecting the same chars.
    #[test]
    fn multibyte_matches_vec_char_model() {
        let pieces = ["héllo", "→→", "日本語", "🦀", "plain", "mixé🦀d"];
        let mut arena = ContentArena::new();
        let mut model: Vec<char> = Vec::new();
        for p in pieces {
            arena.push_str(p);
            model.extend(p.chars());
        }
        assert_eq!(arena.len_chars(), model.len());
        for start in 0..model.len() {
            for end in start..=model.len() {
                let expect: String = model[start..end].iter().collect();
                assert_eq!(arena.slice((start..end).into()), expect, "{start}..{end}");
            }
        }
        for (i, &c) in model.iter().enumerate() {
            assert_eq!(arena.char_at(i), c, "char {i}");
        }
    }

    #[test]
    fn push_char_matches_push_str() {
        let text = "aé→🦀z";
        let mut a = ContentArena::new();
        a.push_str(text);
        let mut b = ContentArena::new();
        for c in text.chars() {
            b.push_char(c);
        }
        assert_eq!(a.slice((0..5).into()), b.slice((0..5).into()));
        assert_eq!(a.len_bytes(), b.len_bytes());
    }
}
