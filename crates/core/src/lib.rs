//! # Eg-walker: collaborative text editing by event graph replay
//!
//! This crate implements the *Event Graph Walker* algorithm from
//! "Collaborative Text Editing with Eg-walker: Better, Faster, Smaller"
//! (Gentle & Kleppmann, EuroSys 2025).
//!
//! A replica's durable state is an [`OpLog`]: the append-only event graph
//! where each event is a single-character insertion or deletion, its unique
//! ID, and its parent version (run-length encoded throughout). The document
//! text itself is a [`Branch`]: a rope plus the version it reflects. There
//! is **no persistent CRDT state** — when concurrent edits must be merged,
//! the walker transiently rebuilds just enough internal state (the
//! [`tracker`]) from the latest critical version, transforms the new
//! events' indexes, applies them to the rope, and throws the state away
//! (paper §3).
//!
//! ```
//! use egwalker::OpLog;
//!
//! let mut oplog = OpLog::new();
//! let alice = oplog.get_or_create_agent("alice");
//! let bob = oplog.get_or_create_agent("bob");
//!
//! oplog.add_insert(alice, 0, "Helo");
//! let v = oplog.version().clone();
//! // Concurrently: alice fixes the typo while bob appends.
//! oplog.add_insert_at(alice, &v, 3, "l");
//! oplog.add_insert_at(bob, &v, 4, "!");
//!
//! let doc = oplog.checkout_tip();
//! assert_eq!(doc.content.to_string(), "Hello!");
//! ```

mod branch;
pub mod bundle;
pub mod content;
pub mod convert;
pub mod cursor;
pub mod history;
mod op;
mod oplog;
pub mod reference;
pub mod session;
pub mod testgen;
pub mod tracker;
pub mod walker;

pub use branch::Branch;
pub use bundle::{BundleError, BundleRun, EventBundle, RunView};
pub use op::{ListOpKind, OpRun, TextOpRef, TextOperation};
pub use oplog::OpLog;
pub use tracker::{Tracker, TrackerSnapshot, TRACKER_FANOUT};
pub use walker::WalkerOpts;

pub use eg_dag::{Frontier, RemoteId, LV};
