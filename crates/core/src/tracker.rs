//! The walker's transient internal state (paper §3.3–§3.6).
//!
//! The [`Tracker`] holds one record per inserted character (plus
//! placeholders standing for the document at the conflict-window base),
//! each carrying the two state machines of Fig. 5:
//!
//! * `sp` — the character's state in the **prepare** version
//!   (`NotInsertedYet` / `Ins` / `Del(n)`), moved by `retreat`/`advance`;
//! * `se` — the state in the **effect** version (`Ins` / `Del`), moved only
//!   forwards by `apply`.
//!
//! Records live in an order-statistic B-tree keyed by sequence position
//! with `(prepare, effect)` width aggregates (§3.4); two index maps (the
//! paper's "second B-tree") map insert-event IDs to tree leaves and delete
//! events to their target characters.

use crate::op::{ListOpKind, OpRun, TextOpRef};
use crate::OpLog;
use eg_content_tree::{ContentTree, Cursor, LeafIdx, RunStep, TreeEntry};
use eg_dag::walk::WalkPlan;
use eg_dag::LV;
use eg_rle::{DTRange, HasLength, IntervalMap, MergableSpan, SplitableSpan};
use std::cell::Cell;
use std::collections::HashMap;

/// Fanout of the tracker's record tree. Chosen by the `walker_hot` fanout
/// sweep (`cargo bench -p eg-bench --bench walker_hot`): on the C1/C2
/// concurrent traces 16 and 32 are within noise of each other on C1 while
/// 16 wins clearly on C2, and both beat 8 (deep trees: more descent and
/// repair levels) and 64 (wide nodes: linear scans and `Vec` shifts
/// dominate). Re-run the sweep after changing the record layout.
pub const TRACKER_FANOUT: usize = 16;

/// Origin sentinel: inserted at the start of the document.
pub const ORIGIN_START: usize = usize::MAX;
/// Origin sentinel: inserted at the end of the document.
pub const ORIGIN_END: usize = usize::MAX - 1;

/// Base of the fake-ID space used for placeholder records (§3.6). The
/// placeholder character at base-document position `i` has ID
/// `UNDERWATER_START + i`.
const UNDERWATER_START: usize = usize::MAX / 4;
/// Width of the initial placeholder: "arbitrarily many indexes" (§3.6).
const UNDERWATER_LEN: usize = usize::MAX / 16;

/// The prepare-version state of a record (paper Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpState {
    /// The insertion has been retreated: invisible in the prepare version.
    NotInsertedYet,
    /// Inserted and not deleted: visible in the prepare version.
    Ins,
    /// Deleted by `n >= 1` (concurrent) delete events.
    Del(u32),
}

/// An internal-state change observed during replay, in ID space. Origins
/// use the [`ORIGIN_START`]/[`ORIGIN_END`] sentinels of [`CrdtSpan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrdtChange {
    /// A new record was integrated.
    Ins {
        /// The record, with its resolved origins.
        span: CrdtSpan,
    },
    /// A run of delete events marked characters deleted.
    Del {
        /// The delete events.
        events: DTRange,
        /// IDs of the deleted characters (ascending).
        target: DTRange,
        /// `true` if ascending events deleted ascending IDs.
        fwd: bool,
    },
}

/// One run of records: consecutively inserted characters with uniform state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrdtSpan {
    /// IDs (insert-event LVs, or underwater IDs) of the characters.
    pub id: DTRange,
    /// ID of the character to the left of `id.start` at insert time, or
    /// [`ORIGIN_START`]. Later characters of the run chain on their
    /// predecessor.
    pub origin_left: usize,
    /// ID of the character right of the run at insert time, or
    /// [`ORIGIN_END`]. Shared by the whole run.
    pub origin_right: usize,
    /// Prepare state (uniform across the run).
    pub sp: SpState,
    /// Effect state: `true` once any applied event deleted the characters.
    pub se_deleted: bool,
}

impl CrdtSpan {
    fn is_underwater(&self) -> bool {
        self.id.start >= UNDERWATER_START
    }
}

// The record tree stores entries in inline arrays whose vacant slots hold
// the default value; an empty span is never read back as a live record.
impl Default for CrdtSpan {
    fn default() -> Self {
        CrdtSpan {
            id: DTRange::default(),
            origin_left: ORIGIN_START,
            origin_right: ORIGIN_END,
            sp: SpState::Ins,
            se_deleted: false,
        }
    }
}

/// Returns `true` if `id` is a placeholder (underwater) character ID rather
/// than a real insert-event LV.
pub fn is_underwater_id(id: usize) -> bool {
    (UNDERWATER_START..UNDERWATER_START + UNDERWATER_LEN).contains(&id)
}

impl HasLength for CrdtSpan {
    fn len(&self) -> usize {
        self.id.len()
    }
}

impl SplitableSpan for CrdtSpan {
    fn truncate(&mut self, at: usize) -> Self {
        let rem_id = self.id.truncate(at);
        CrdtSpan {
            id: rem_id,
            origin_left: rem_id.start - 1,
            origin_right: self.origin_right,
            sp: self.sp,
            se_deleted: self.se_deleted,
        }
    }
}

impl MergableSpan for CrdtSpan {
    fn can_append(&self, other: &Self) -> bool {
        self.id.can_append(&other.id)
            && other.origin_left == self.id.last()
            && other.origin_right == self.origin_right
            && other.sp == self.sp
            && other.se_deleted == self.se_deleted
    }

    fn append(&mut self, other: Self) {
        self.id.append(other.id);
    }
}

impl TreeEntry for CrdtSpan {
    fn width_cur(&self) -> usize {
        if self.sp == SpState::Ins {
            self.len()
        } else {
            0
        }
    }

    fn width_end(&self) -> usize {
        if self.se_deleted {
            0
        } else {
            self.len()
        }
    }
}

/// Sentinel in [`DelTargetIndex`] for event LVs that are not (applied)
/// deletes. Real target ids top out below [`UNDERWATER_START`] +
/// [`UNDERWATER_LEN`], well under `usize::MAX`.
const NO_TARGET: usize = usize::MAX;

/// A serializable snapshot of a tracker's replay state (paper §3.5 /
/// ROADMAP "tracker checkpointing"): the record sequence in document
/// order plus the recorded delete runs.
///
/// This is the *relocatable* form the PR-6 slab arena makes cheap: the
/// tree's entry sequence is the serialized contract (slab layout is
/// rebuilt dense on restore via [`eg_content_tree::ContentTree::from_entries`],
/// which also repopulates the ID index for free), and the delete-target
/// index round-trips as `(events, target ids, direction)` runs. The
/// cursor/emit caches, scratch buffers, and walk plan are deliberately
/// *not* part of a snapshot — they are pure accelerators, empty on
/// restore.
///
/// A tracker restored from a snapshot behaves byte-identically to the
/// tracker that produced it (pinned by the `cached_load_props` suite).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TrackerSnapshot {
    /// The record runs in document order, placeholder (underwater) spans
    /// included.
    pub records: Vec<CrdtSpan>,
    /// Recorded delete runs: `(delete events, ascending target ids,
    /// forward?)`, ascending and disjoint in event space.
    pub del_runs: Vec<(DTRange, DTRange, bool)>,
}

impl TrackerSnapshot {
    /// Validates the structural invariants [`Tracker::from_snapshot`] and
    /// all later tracker operations rely on, so a decoder can safely
    /// restore untrusted (e.g. disk-corrupted but CRC-valid) bytes
    /// without risking a panic or an unbounded allocation downstream.
    ///
    /// `num_events` is the total event count of the oplog this snapshot
    /// accompanies: every real character ID and every delete-event LV
    /// must fall below it.
    pub fn validate(&self, num_events: usize) -> Result<(), &'static str> {
        let mut total_raw = 0usize;
        for r in &self.records {
            if r.id.start >= r.id.end {
                return Err("empty record span");
            }
            if r.id.start < UNDERWATER_START {
                if r.id.end > num_events {
                    return Err("record id beyond oplog");
                }
            } else if r.id.end > UNDERWATER_START + UNDERWATER_LEN {
                return Err("record id beyond placeholder space");
            }
            total_raw = total_raw
                .checked_add(r.id.end - r.id.start)
                .ok_or("record widths overflow")?;
            if let SpState::Del(n) = r.sp {
                if n == 0 {
                    return Err("Del(0) prepare state");
                }
            }
        }
        let mut prev_end = 0usize;
        for &(events, target, _fwd) in &self.del_runs {
            if events.start >= events.end {
                return Err("empty delete run");
            }
            if events.start < prev_end {
                return Err("delete runs not ascending");
            }
            prev_end = events.end;
            if events.end > num_events {
                return Err("delete event beyond oplog");
            }
            if events.len() != target.len() {
                return Err("delete run length mismatch");
            }
            if target.end > UNDERWATER_START + UNDERWATER_LEN {
                return Err("delete target beyond id space");
            }
        }
        Ok(())
    }
}

/// Delete-event LV → target-character ID, over the dense event-LV space.
///
/// The same trick as [`IdIndex`]: event LVs are dense, so `dense[lv]` holds
/// the id of the character that delete event `lv` removed ([`NO_TARGET`]
/// for non-delete events). Runs re-materialise on lookup by scanning for
/// consecutive ±1 targets, so replay stops paying a `BTreeMap` node
/// allocation per recorded delete run.
#[derive(Debug, Default)]
struct DelTargetIndex {
    dense: Vec<usize>,
}

impl DelTargetIndex {
    /// Records that delete events `events` removed the characters `target`
    /// (ascending ids; `fwd` gives the event-to-id direction).
    fn record(&mut self, events: DTRange, target: DTRange, fwd: bool) {
        debug_assert_eq!(events.len(), target.len());
        if self.dense.len() < events.end {
            self.dense.resize(events.end, NO_TARGET);
        }
        for k in 0..events.len() {
            self.dense[events.start + k] = if fwd {
                target.start + k
            } else {
                target.end - 1 - k
            };
        }
    }

    /// The target id of delete event `lv`.
    fn target_of(&self, lv: LV) -> usize {
        let t = *self.dense.get(lv).expect("unknown delete event");
        assert_ne!(t, NO_TARGET, "event {lv} is not a recorded delete");
        t
    }

    /// The longest run of events starting at `lv` (bounded by `end`) whose
    /// targets form one contiguous id run. Returns the target ids as an
    /// ascending range plus the run length in events.
    fn run_at(&self, lv: LV, end: LV) -> (DTRange, usize) {
        let t0 = self.target_of(lv);
        let mut n = 1usize;
        if lv + 1 < end && self.dense.get(lv + 1) == Some(&(t0 + 1)) {
            // Ascending (fwd) run.
            while lv + n < end && self.dense.get(lv + n) == Some(&(t0 + n)) {
                n += 1;
            }
            ((t0..t0 + n).into(), n)
        } else if t0 > 0 && lv + 1 < end && self.dense.get(lv + 1) == Some(&(t0 - 1)) {
            // Descending (bwd) run.
            while lv + n < end && t0 >= n && self.dense.get(lv + n) == Some(&(t0 - n)) {
                n += 1;
            }
            ((t0 + 1 - n..t0 + 1).into(), n)
        } else {
            ((t0..t0 + 1).into(), 1)
        }
    }

    /// Forgets everything, retaining capacity.
    fn clear(&mut self) {
        self.dense.clear();
    }
}

/// The tracker's character-ID → tree-leaf index (the paper's "second
/// B-tree", §3.4).
///
/// Real character IDs are insert-event LVs — a dense `0..num_events`
/// space — so they index a flat vector directly: O(1) point lookups and a
/// `fill` per split notification, an order of magnitude cheaper than the
/// interval-map route the profile showed dominating C1/C2 merge time.
/// Placeholder (underwater) IDs sit near `usize::MAX` and stay in an
/// [`IntervalMap`], which handles their huge sparse ranges in O(pieces).
#[derive(Debug, Default)]
struct IdIndex {
    /// Real IDs: `dense[lv]` is the leaf holding the record (`None` for ids
    /// never indexed; `Option<LeafIdx>` packs into 4 bytes via the
    /// `NonZeroU32` niche).
    dense: Vec<Option<LeafIdx>>,
    /// Underwater IDs, keyed by their full `usize` range.
    underwater: IntervalMap<LeafIdx>,
}

impl IdIndex {
    /// Points every id of `ids` (one uniform span: all real or all
    /// underwater) at `leaf`.
    fn set(&mut self, ids: DTRange, leaf: LeafIdx) {
        if ids.start >= UNDERWATER_START {
            self.underwater.set(ids, leaf);
            return;
        }
        debug_assert!(ids.end <= UNDERWATER_START, "span straddles id spaces");
        if self.dense.len() < ids.end {
            self.dense.resize(ids.end, None);
        }
        self.dense[ids.start..ids.end].fill(Some(leaf));
    }

    /// The leaf indexed for `id`, if any.
    fn get(&self, id: usize) -> Option<LeafIdx> {
        if id >= UNDERWATER_START {
            return self.underwater.get(id).map(|(_, leaf)| leaf);
        }
        self.dense.get(id).copied().flatten()
    }

    fn clear(&mut self) {
        self.dense.clear();
        self.underwater.clear();
    }
}

/// The transient internal state of the Eg-walker algorithm.
///
/// `N` is the fanout of the record tree (see [`TRACKER_FANOUT`]); it is a
/// parameter so the `walker_hot` benchmark can sweep it.
///
/// A tracker is `Send` — the multi-core server host moves one onto each
/// worker thread — but deliberately **not** `Sync`: the cursor and
/// emit-position caches are plain [`Cell`]s, so sharing a tracker across
/// threads would be a data race. Each worker owns its own. Frozen by
/// this compile-fail check (it compiles the day `Tracker` becomes
/// `Sync`, failing the doctest):
///
/// ```compile_fail
/// fn assert_sync<T: Sync>() {}
/// assert_sync::<egwalker::Tracker>();
/// ```
#[derive(Debug)]
pub struct Tracker<const N: usize = TRACKER_FANOUT> {
    tree: ContentTree<CrdtSpan, N>,
    /// Character ID → tree leaf holding its record.
    ins_loc: IdIndex,
    /// Delete-event LV → target character, dense over the event-LV space.
    del_targets: DelTargetIndex,
    /// Last-used cursor, the fast path for sequential ID lookups.
    ///
    /// Validation is by ID containment: record IDs are unique across the
    /// tree and leaves are never demoted to internal nodes, so *any* entry
    /// that contains the sought ID is the right one no matter how stale
    /// the cached position is. The cache therefore only has to be dropped
    /// when the ID space itself resets ([`Tracker::clear`]); structural
    /// edits merely turn hits into misses.
    cache: Cell<Option<Cursor>>,
    /// Disables the cache entirely (reference mode for equivalence tests
    /// and the `walker_hot` cache ablation).
    cache_enabled: bool,
    /// Last emitted insert position, the fast path that lets consecutive
    /// sequential insert runs skip the per-op upward
    /// [`ContentTree::offset_of`] walk.
    ///
    /// Validation is by identity: a hit requires the new record to land in
    /// the *same entry slot* (`leaf`, `entry_idx`) holding the *same run*
    /// (`id_start`) as the previous emitted insert — i.e. the insert
    /// RLE-merged onto the cached entry's tail, which appends in place and
    /// cannot move anything left of the entry. Every other tree mutation
    /// (deletes, retreat/advance, non-emitted or non-merging inserts,
    /// clear) invalidates the cache outright, so a stale `end_base` can
    /// never be read.
    emit_cache: Cell<Option<EmitPos>>,
    /// Disables the emit-position cache (reference mode for the
    /// equivalence property tests).
    emit_cache_enabled: bool,
    /// Raw positions memoised during a single [`Tracker::integrate`] scan
    /// (cleared at scan start; the tree does not change mid-scan). Long
    /// scans on scan-heavy (A-series) traces revisit the same origins many
    /// times; the memo collapses those repeated `raw_pos_of` tree walks.
    /// Kept as a member so its capacity is reused across scans.
    integrate_memo: HashMap<usize, usize>,
    /// Reusable run buffer for [`Tracker::move_prepare`] (retreat/advance
    /// run once per walk step; allocating it fresh each time showed up on
    /// the concurrent traces).
    prepare_scratch: Vec<(DTRange, OpRun)>,
    /// Reusable piece buffer for the forward-delete batch
    /// ([`Tracker::apply_delete_fwd`]).
    delete_scratch: Vec<DelPiece>,
    /// Reusable walk plan: the planner's pooled buffers (node pools, CSR
    /// edges, diff scratch, range pool) survive across walk windows.
    pub(crate) plan: WalkPlan,
}

/// One entry-bounded chunk of a forward delete, recorded by the batch
/// policy (identical granularity to the naive per-entry loop).
#[derive(Debug, Clone, Copy)]
struct DelPiece {
    ids: DTRange,
    was_deleted: bool,
    emit_pos: usize,
}

/// The emit-position cache entry: where the last emitted insert landed and
/// what the `end`-dimension offset of that entry's start was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EmitPos {
    /// Leaf that held the record.
    leaf: LeafIdx,
    /// Entry index within the leaf.
    entry_idx: usize,
    /// `id.start` of the entry when cached (identity check: entry indexes
    /// are reused as leaves restructure, IDs are not).
    id_start: usize,
    /// Number of `end`-visible units strictly before the entry.
    end_base: usize,
}

/// Direction of a prepare-version move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    Retreat,
    Advance,
}

impl<const N: usize> Default for Tracker<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const N: usize> Tracker<N> {
    /// Creates a cleared tracker: a single placeholder standing for the
    /// (unknown) document at the replay base version.
    pub fn new() -> Self {
        Self::new_with_cache(true)
    }

    /// [`Tracker::new`] with the cursor cache switched on or off (the
    /// emit-position cache stays on). The two modes produce byte-identical
    /// output; disabling exists for the equivalence property tests and the
    /// cache ablation benchmark.
    pub fn new_with_cache(cache_enabled: bool) -> Self {
        Self::new_with_caches(cache_enabled, true)
    }

    /// [`Tracker::new`] with both the cursor cache and the emit-position
    /// cache switched on or off independently. All four combinations
    /// produce byte-identical output; disabling exists for the equivalence
    /// property tests and ablation benchmarks.
    pub fn new_with_caches(cache_enabled: bool, emit_cache_enabled: bool) -> Self {
        let mut t = Tracker {
            tree: ContentTree::new(),
            ins_loc: IdIndex::default(),
            del_targets: DelTargetIndex::default(),
            cache: Cell::new(None),
            cache_enabled,
            emit_cache: Cell::new(None),
            emit_cache_enabled,
            integrate_memo: HashMap::new(),
            prepare_scratch: Vec::new(),
            delete_scratch: Vec::new(),
            plan: WalkPlan::new(),
        };
        t.install_placeholder();
        t
    }

    /// Discards all internal state (paper §3.5) and reinstalls a fresh
    /// placeholder for the document at the new base version.
    ///
    /// Every allocation is retained: the record tree's slabs truncate in
    /// place, the dense indexes keep their vectors, and the scratch buffers
    /// keep their capacity — so the rebuild after a critical-version clear
    /// (or the next merge on a reused tracker) costs zero allocator calls
    /// until the state outgrows its previous high-water mark.
    pub fn clear(&mut self) {
        self.tree.clear();
        self.ins_loc.clear();
        self.del_targets.clear();
        self.integrate_memo.clear();
        // The arena was reset: cached node indexes are meaningless.
        self.cache.set(None);
        self.emit_cache.set(None);
        self.install_placeholder();
    }

    /// [`Tracker::clear`] plus cache-switch reconfiguration: resets the
    /// tracker for a fresh walk while retaining every allocation. This is
    /// the entry point for reusing one tracker across merge windows (see
    /// `walker::walk_reusing`).
    pub fn reset_with_caches(&mut self, cache_enabled: bool, emit_cache_enabled: bool) {
        self.cache_enabled = cache_enabled;
        self.emit_cache_enabled = emit_cache_enabled;
        self.clear();
    }

    fn install_placeholder(&mut self) {
        let span = CrdtSpan {
            id: (UNDERWATER_START..UNDERWATER_START + UNDERWATER_LEN).into(),
            origin_left: ORIGIN_START,
            origin_right: ORIGIN_END,
            sp: SpState::Ins,
            se_deleted: false,
        };
        let ins_loc = &mut self.ins_loc;
        let cursor = self.tree.cursor_at_start();
        self.tree
            .insert_at(cursor, span, &mut |e: &CrdtSpan, leaf| {
                ins_loc.set(e.id, leaf);
            });
    }

    /// The number of records (including placeholders) currently held.
    pub fn num_records(&self) -> usize {
        self.tree.num_entries()
    }

    /// Snapshots the internal record sequence, in document order — the rows
    /// of the paper's Figures 6 and 7. Placeholder (underwater) spans are
    /// included; filter with [`is_underwater_id`] if only real characters
    /// are of interest. Intended for tests, debugging, and visualisation.
    pub fn records(&self) -> Vec<CrdtSpan> {
        self.tree.iter().copied().collect()
    }

    /// Captures the tracker's replay state as a [`TrackerSnapshot`].
    ///
    /// The snapshot pairs with the version the tracker currently
    /// represents (prepare == effect == the last walked frontier); the
    /// caller records that version alongside (the storage layer's
    /// checkpoint record does).
    pub fn to_snapshot(&self) -> TrackerSnapshot {
        let records = self.records();
        let mut del_runs = Vec::new();
        let dense = &self.del_targets.dense;
        let mut lv = 0usize;
        while lv < dense.len() {
            if dense[lv] == NO_TARGET {
                lv += 1;
                continue;
            }
            let (target, n) = self.del_targets.run_at(lv, dense.len());
            let fwd = n == 1 || dense[lv + 1] == dense[lv] + 1;
            del_runs.push((DTRange::from(lv..lv + n), target, fwd));
            lv += n;
        }
        TrackerSnapshot { records, del_runs }
    }

    /// Restores a tracker from a snapshot, with both caches enabled.
    ///
    /// The record tree is rebuilt dense by bulk load (repopulating the
    /// ID → leaf index from the entry stream) and the delete runs are
    /// re-recorded; caches, scratch buffers, and the walk plan start
    /// empty. The restored tracker is behaviourally identical to the one
    /// that produced the snapshot.
    ///
    /// For untrusted input, call [`TrackerSnapshot::validate`] first —
    /// this constructor trusts the snapshot's structural invariants.
    pub fn from_snapshot(snap: &TrackerSnapshot) -> Self {
        Self::from_snapshot_with_caches(snap, true, true)
    }

    /// [`Tracker::from_snapshot`] with explicit cache switches (the
    /// equivalence property tests sweep them).
    pub fn from_snapshot_with_caches(
        snap: &TrackerSnapshot,
        cache_enabled: bool,
        emit_cache_enabled: bool,
    ) -> Self {
        let mut ins_loc = IdIndex::default();
        let tree = ContentTree::from_entries(snap.records.iter().copied(), |e: &CrdtSpan, leaf| {
            ins_loc.set(e.id, leaf);
        });
        let mut del_targets = DelTargetIndex::default();
        for &(events, target, fwd) in &snap.del_runs {
            del_targets.record(events, target, fwd);
        }
        Tracker {
            tree,
            ins_loc,
            del_targets,
            cache: Cell::new(None),
            cache_enabled,
            emit_cache: Cell::new(None),
            emit_cache_enabled,
            integrate_memo: HashMap::new(),
            prepare_scratch: Vec::new(),
            delete_scratch: Vec::new(),
            plan: WalkPlan::new(),
        }
    }

    /// Scans one leaf for the entry containing `id`.
    fn find_in_leaf(&self, leaf: LeafIdx, id: usize) -> Option<(Cursor, usize)> {
        for (i, e) in self.tree.entries_in_leaf(leaf).iter().enumerate() {
            if e.id.contains(id) {
                let offset = id - e.id.start;
                return Some((
                    Cursor {
                        leaf,
                        entry_idx: i,
                        offset,
                    },
                    e.len() - offset,
                ));
            }
        }
        None
    }

    /// Finds the record chunk containing `id`, returning a cursor at it and
    /// the remaining length of the containing entry from that offset.
    ///
    /// Fast path: probe the cached cursor's leaf and its successor (runs
    /// are laid out left-to-right, so sequential lookups land there);
    /// otherwise descend via the ID index and re-seed the cache.
    fn cursor_for_id(&self, id: usize) -> (Cursor, usize) {
        if self.cache_enabled {
            if let Some(c) = self.cache.get() {
                let hit = self
                    .find_in_leaf(c.leaf, id)
                    .or_else(|| self.find_in_leaf(self.tree.next_leaf(c.leaf)?, id));
                if let Some(found) = hit {
                    self.cache.set(Some(found.0));
                    return found;
                }
            }
        }
        let leaf = self
            .ins_loc
            .get(id)
            .unwrap_or_else(|| panic!("unknown record id {id}"));
        let found = self
            .find_in_leaf(leaf, id)
            .unwrap_or_else(|| panic!("record id {id} not found in its indexed leaf"));
        if self.cache_enabled {
            self.cache.set(Some(found.0));
        }
        found
    }

    /// Re-seeds the cursor cache at the start of `leaf` (the best guess
    /// after a batched mutation restructured it).
    fn seed_cache(&self, leaf: LeafIdx) {
        if self.cache_enabled {
            self.cache.set(Some(Cursor {
                leaf,
                entry_idx: 0,
                offset: 0,
            }));
        }
    }

    /// The raw sequence position of the record with the given ID.
    fn raw_pos_of(&self, id: usize) -> usize {
        let (cursor, _) = self.cursor_for_id(id);
        self.tree.offset_of(cursor.leaf, cursor.entry_idx).raw + cursor.offset
    }

    /// Applies a state-machine step to the records of `ids` (ascending
    /// chunk; order within is irrelevant as every unit gets the same step).
    ///
    /// Span-batched: one tree descent per *leaf* worth of consecutive
    /// records, mutated in a single [`ContentTree::mutate_run`] pass with
    /// one width fix-up, instead of a descent + repair per entry.
    fn mutate_ids(&mut self, ids: DTRange, step: impl Fn(&mut CrdtSpan) + Copy) {
        // State mutations shift entry widths; drop the emit-position cache.
        self.emit_cache.set(None);
        let mut next = ids.start;
        while next < ids.end {
            let (cursor, _) = self.cursor_for_id(next);
            let before = next;
            let end = ids.end;
            {
                let tree = &mut self.tree;
                let ins_loc = &mut self.ins_loc;
                tree.mutate_run(
                    &cursor,
                    |e: &CrdtSpan, off| {
                        // Keep batching while the leaf's entries continue
                        // the ID run; anything else re-descends.
                        if next >= end {
                            RunStep::Stop
                        } else if e.id.start + off == next {
                            let n = (end - next).min(e.len() - off);
                            next += n;
                            RunStep::Mutate(n)
                        } else {
                            RunStep::Stop
                        }
                    },
                    |e| step(e),
                    &mut |e: &CrdtSpan, leaf| {
                        ins_loc.set(e.id, leaf);
                    },
                );
            }
            assert!(next > before, "mutate_ids made no progress at id {next}");
            // The batch may have split its leaf; probing from the leaf
            // start still finds the continuation (there or in the split
            // sibling, the leaf's successor).
            self.seed_cache(cursor.leaf);
        }
    }

    /// Retreats every event of `range` (paper §3.2): updates the prepare
    /// version to exclude them. Events must currently be included.
    pub fn retreat(&mut self, oplog: &OpLog, range: DTRange) {
        self.move_prepare(oplog, range, Dir::Retreat);
    }

    /// Advances every event of `range`: updates the prepare version to
    /// include them again. The events must have been applied before.
    pub fn advance(&mut self, oplog: &OpLog, range: DTRange) {
        self.move_prepare(oplog, range, Dir::Advance);
    }

    fn move_prepare(&mut self, oplog: &OpLog, range: DTRange, dir: Dir) {
        // Retreats must process causally-later events first (a delete of a
        // character must be retreated before the insert that created it);
        // advances the other way around. LV order respects causality.
        // The run buffer is a reusable scratch member: retreat/advance run
        // once per walk step, and a per-step heap allocation here showed
        // up on the concurrent traces.
        let mut runs = std::mem::take(&mut self.prepare_scratch);
        runs.clear();
        runs.extend(oplog.ops_in(range)); // ALLOC: pooled prepare_scratch, capacity retained across walks
        match dir {
            Dir::Retreat => {
                for i in (0..runs.len()).rev() {
                    let (lvs, run) = runs[i];
                    self.prepare_one(lvs, &run, dir);
                }
            }
            Dir::Advance => {
                for i in 0..runs.len() {
                    let (lvs, run) = runs[i];
                    self.prepare_one(lvs, &run, dir);
                }
            }
        }
        self.prepare_scratch = runs;
    }

    /// Moves the prepare state for one operation run (a [`Tracker::move_prepare`]
    /// step).
    fn prepare_one(&mut self, lvs: DTRange, run: &OpRun, dir: Dir) {
        match run.kind {
            ListOpKind::Ins => {
                // Insert events: record ids == event lvs.
                self.mutate_ids(lvs, |e| {
                    e.sp = match (dir, e.sp) {
                        (Dir::Retreat, SpState::Ins) => SpState::NotInsertedYet,
                        (Dir::Advance, SpState::NotInsertedYet) => SpState::Ins,
                        (d, s) => panic!("invalid insert {d:?} from state {s:?}"),
                    };
                });
            }
            ListOpKind::Del => {
                // Look up the targets chunk-wise in the dense index, run
                // coalescing by direction as we go.
                let mut lv = lvs.start;
                while lv < lvs.end {
                    let (ids, n) = self.del_targets.run_at(lv, lvs.end);
                    self.mutate_ids(ids, |e| {
                        e.sp = match (dir, e.sp) {
                            (Dir::Retreat, SpState::Del(1)) => SpState::Ins,
                            (Dir::Retreat, SpState::Del(n)) => SpState::Del(n - 1),
                            (Dir::Advance, SpState::Ins) => SpState::Del(1),
                            (Dir::Advance, SpState::Del(n)) => SpState::Del(n + 1),
                            (d, s) => panic!("invalid delete {d:?} from state {s:?}"),
                        };
                    });
                    lv += n;
                }
            }
        }
    }

    /// Applies a run of events (paper §3.3), emitting transformed operations
    /// through `out` when `emit` is set.
    ///
    /// Operations are emitted as borrowed [`TextOpRef`]s (insert content is
    /// a `&str` slice of the oplog's content arena); nothing on this path
    /// heap-allocates per operation.
    ///
    /// The prepare version must already equal the run's parent version
    /// (the walker guarantees this via retreat/advance).
    pub fn apply_range<F>(&mut self, oplog: &OpLog, range: DTRange, emit: bool, out: &mut F)
    where
        F: FnMut(DTRange, TextOpRef<'_>),
    {
        self.apply_range_observed(oplog, range, emit, out, &mut |_| {});
    }

    /// [`Tracker::apply_range`] with an observer that sees every internal
    /// state change in ID space. Used to convert event graphs into CRDT
    /// operation streams (the paper's `crdt-converter`, §A.5).
    pub fn apply_range_observed<F>(
        &mut self,
        oplog: &OpLog,
        range: DTRange,
        emit: bool,
        out: &mut F,
        observe: &mut dyn FnMut(CrdtChange),
    ) where
        F: FnMut(DTRange, TextOpRef<'_>),
    {
        for (lvs, run) in oplog.ops_in(range) {
            match run.kind {
                ListOpKind::Ins => self.apply_insert(oplog, lvs, &run, emit, out, observe),
                ListOpKind::Del => self.apply_delete(lvs, &run, emit, out, observe),
            }
        }
    }

    /// Applies one insert run: finds the position in the prepare state,
    /// integrates against concurrent insertions (§3.3), inserts the record
    /// and emits the transformed insertion.
    fn apply_insert<F>(
        &mut self,
        oplog: &OpLog,
        lvs: DTRange,
        run: &OpRun,
        emit: bool,
        out: &mut F,
        observe: &mut dyn FnMut(CrdtChange),
    ) where
        F: FnMut(DTRange, TextOpRef<'_>),
    {
        let pos = run.loc.start;

        // Locate the scan start: just after the character left of the
        // insert position (in prepare coordinates).
        let (cursor, origin_left) = if pos == 0 {
            (self.tree.cursor_at_start(), ORIGIN_START)
        } else {
            let (c, _) = self.tree.cursor_at_cur_unit(pos - 1);
            let e = self.tree.entry_at(&c);
            debug_assert_eq!(e.sp, SpState::Ins);
            let ol = e.id.start + c.offset;
            (
                Cursor {
                    leaf: c.leaf,
                    entry_idx: c.entry_idx,
                    offset: c.offset + 1,
                },
                ol,
            )
        };

        // Find the right origin: the first record at-or-after the position
        // that is not NotInsertedYet (pseudocode: prepare_state >= 1).
        // Track whether any NotInsertedYet record was skipped on the way:
        // the records between the two origins are exactly those skipped
        // entries, so when none were skipped the integration scan is
        // vacuous and `dest == cursor` without computing a single raw
        // position (the common case on sequential runs, and on most
        // concurrent inserts too).
        let mut origin_right = ORIGIN_END;
        let mut skipped_niy = false;
        {
            let mut scan = cursor;
            loop {
                let valid = if scan.entry_idx < self.tree.entries_in_leaf(scan.leaf).len()
                    && scan.offset < self.tree.entry_at(&scan).len()
                {
                    true
                } else {
                    scan.offset = 0;
                    self.tree.cursor_next_entry(&mut scan)
                };
                if !valid {
                    break;
                }
                let e = self.tree.entry_at(&scan);
                if e.sp != SpState::NotInsertedYet {
                    origin_right = e.id.start + scan.offset;
                    break;
                }
                skipped_niy = true;
                if !self.tree.cursor_next_entry(&mut scan) {
                    break;
                }
            }
        }

        let new_span = CrdtSpan {
            id: lvs,
            origin_left,
            origin_right,
            sp: SpState::Ins,
            se_deleted: false,
        };
        let dest = if skipped_niy {
            self.integrate(oplog, &new_span, cursor)
        } else {
            cursor
        };
        observe(CrdtChange::Ins { span: new_span });

        let ins_loc = &mut self.ins_loc;
        let placed = self
            .tree
            .insert_at(dest, new_span, &mut |e: &CrdtSpan, leaf| {
                ins_loc.set(e.id, leaf);
            });
        // Sequential edits overwhelmingly target the just-inserted run
        // (the next insert's origin-left, a following delete's target).
        if self.cache_enabled {
            self.cache.set(Some(placed));
        }

        if emit {
            // The record just inserted is effect-visible, and if it merged
            // into an existing entry that entry is effect-visible too, so
            // the effect position is the entry-start `end` offset plus the
            // raw offset within the entry. The entry-start offset comes
            // from the emit-position cache when this insert RLE-merged
            // onto the entry the previous emitted insert landed in
            // (sequential typing, the overwhelmingly common case);
            // otherwise from an upward `offset_of` walk, re-seeding the
            // cache.
            let end_base = self
                .emit_pos_hit(&placed)
                .unwrap_or_else(|| self.tree.offset_of(placed.leaf, placed.entry_idx).end);
            if self.emit_cache_enabled {
                self.emit_cache.set(Some(EmitPos {
                    leaf: placed.leaf,
                    entry_idx: placed.entry_idx,
                    id_start: self.tree.entries_in_leaf(placed.leaf)[placed.entry_idx]
                        .id
                        .start,
                    end_base,
                }));
            }
            let effect_pos = end_base + placed.offset;
            let content = oplog.content_slice(run.content.expect("insert without content"));
            out(
                lvs,
                TextOpRef {
                    kind: ListOpKind::Ins,
                    pos: effect_pos,
                    len: lvs.len(),
                    content: Some(content),
                },
            );
        } else {
            // The tree changed without the emit bookkeeping; any cached
            // emit position is stale.
            self.emit_cache.set(None);
        }
    }

    /// Checks the emit-position cache against the slot the insert landed
    /// in. A hit requires the same `(leaf, entry_idx)` slot to still hold
    /// the run it was cached for — then this insert merged onto that
    /// entry's tail in place, and the cached entry-start offset is intact.
    fn emit_pos_hit(&self, placed: &Cursor) -> Option<usize> {
        if !self.emit_cache_enabled {
            return None;
        }
        let c = self.emit_cache.get()?;
        if c.leaf == placed.leaf
            && c.entry_idx == placed.entry_idx
            && self.tree.entries_in_leaf(placed.leaf)[placed.entry_idx]
                .id
                .start
                == c.id_start
        {
            Some(c.end_base)
        } else {
            None
        }
    }

    /// [`Tracker::raw_pos_of`] memoised for the duration of one
    /// [`Tracker::integrate`] scan (the tree does not change mid-scan).
    /// Scan-heavy traces ask for the same origins over and over; the memo
    /// turns the repeated tree walks into hash lookups.
    fn raw_pos_of_memo(&mut self, id: usize) -> usize {
        if let Some(&p) = self.integrate_memo.get(&id) {
            return p;
        }
        let p = self.raw_pos_of(id);
        self.integrate_memo.insert(id, p);
        p
    }

    /// The YjsMod integration scan (paper §3.3, Listing 2): walks the
    /// records between the two origins to find where a concurrent insertion
    /// belongs. Returns the destination cursor.
    fn integrate(&mut self, oplog: &OpLog, new_span: &CrdtSpan, cursor: Cursor) -> Cursor {
        let cursor_raw = {
            let w = self.tree.offset_of(cursor.leaf, cursor.entry_idx);
            w.raw + cursor.offset
        };
        let left_raw: i64 = if new_span.origin_left == ORIGIN_START {
            -1
        } else {
            cursor_raw as i64 - 1
        };
        let right_raw: i64 = if new_span.origin_right == ORIGIN_END {
            i64::MAX
        } else {
            self.raw_pos_of(new_span.origin_right) as i64
        };

        // Fast path: nothing between the origins.
        if cursor_raw as i64 == right_raw {
            return cursor;
        }

        // The scan below may look each visited record's origins up by raw
        // position; those lookups repeat heavily, so they go through a
        // per-scan memo (valid because the tree is not mutated mid-scan).
        self.integrate_memo.clear();
        let mut scanning = false;
        let mut dest = cursor;
        let mut i = cursor;
        let mut i_raw = cursor_raw;
        loop {
            if !scanning {
                dest = i;
            }
            if i_raw as i64 == right_raw {
                break;
            }
            // Normalise / advance to a valid entry.
            let valid = if i.entry_idx < self.tree.entries_in_leaf(i.leaf).len()
                && i.offset < self.tree.entry_at(&i).len()
            {
                true
            } else {
                i.offset = 0;
                self.tree.cursor_next_entry(&mut i)
            };
            if !valid {
                break; // End of document.
            }
            let other = *self.tree.entry_at(&i);
            debug_assert!(
                !other.is_underwater(),
                "integrate scan must not cross a placeholder"
            );
            debug_assert_eq!(other.sp, SpState::NotInsertedYet);
            debug_assert_eq!(i.offset, 0, "scan entries are visited run-aligned");

            let oleft: i64 = if other.origin_left == ORIGIN_START {
                -1
            } else {
                self.raw_pos_of_memo(other.origin_left) as i64
            };
            #[allow(clippy::comparison_chain)]
            if oleft < left_raw {
                break;
            } else if oleft == left_raw {
                let oright: i64 = if other.origin_right == ORIGIN_END {
                    i64::MAX
                } else {
                    self.raw_pos_of_memo(other.origin_right) as i64
                };
                #[allow(clippy::comparison_chain)]
                if oright < right_raw {
                    scanning = true;
                } else if oright == right_raw {
                    // Same origins: tie-break on agent name, as in Yjs.
                    let my_agent = oplog.agents.lv_to_agent_span(new_span.id.start).agent;
                    let other_agent = oplog.agents.lv_to_agent_span(other.id.start).agent;
                    let my_name = oplog.agents.agent_name(my_agent);
                    let other_name = oplog.agents.agent_name(other_agent);
                    if my_name < other_name {
                        break;
                    }
                    scanning = false;
                } else {
                    scanning = false;
                }
            }
            // Skip the whole run: its tail items chain on their predecessor
            // (their origin-left lies inside the run, which is > left).
            i_raw += other.len();
            i.offset = other.len();
        }
        dest
    }

    /// Applies one delete run chunk-wise, marking targets deleted in both
    /// state machines and emitting transformed deletions.
    fn apply_delete<F>(
        &mut self,
        lvs: DTRange,
        run: &OpRun,
        emit: bool,
        out: &mut F,
        observe: &mut dyn FnMut(CrdtChange),
    ) where
        F: FnMut(DTRange, TextOpRef<'_>),
    {
        // Deletes shrink widths left of wherever the next insert lands;
        // the cached emit position is no longer trustworthy.
        self.emit_cache.set(None);
        if run.fwd {
            self.apply_delete_fwd(lvs, run, emit, out, observe);
            return;
        }
        let n = lvs.len();
        let mut done = 0usize;
        // In prepare coordinates: backward runs walk down from the top.
        let mut bwd_pos = run.loc.end - 1;
        while done < n {
            let (cursor, end_off, chunk, target_ids, was_deleted) = {
                let (c, end_off) = self.tree.cursor_at_cur_unit(bwd_pos);
                let e = self.tree.entry_at(&c);
                debug_assert_eq!(e.sp, SpState::Ins);
                let chunk = (n - done).min(c.offset + 1);
                let start_off = c.offset + 1 - chunk;
                let ids: DTRange = (e.id.start + start_off..e.id.start + start_off + chunk).into();
                // When the entry is already effect-deleted nothing will be
                // emitted; guard the position arithmetic (end_off can be
                // smaller than the chunk in that case).
                let emit_pos = if e.se_deleted { 0 } else { end_off + 1 - chunk };
                (
                    Cursor {
                        leaf: c.leaf,
                        entry_idx: c.entry_idx,
                        offset: start_off,
                    },
                    emit_pos,
                    chunk,
                    ids,
                    e.se_deleted,
                )
            };

            let ins_loc = &mut self.ins_loc;
            self.tree.mutate_entry(
                &cursor,
                chunk,
                |e| {
                    debug_assert_eq!(e.sp, SpState::Ins);
                    e.sp = SpState::Del(1);
                    e.se_deleted = true;
                },
                &mut |e: &CrdtSpan, leaf| {
                    ins_loc.set(e.id, leaf);
                },
            );
            let events: DTRange = (lvs.start + done..lvs.start + done + chunk).into();
            self.del_targets.record(events, target_ids, run.fwd);
            observe(CrdtChange::Del {
                events,
                target: target_ids,
                fwd: run.fwd,
            });
            if emit && !was_deleted {
                out(
                    (lvs.start + done..lvs.start + done + chunk).into(),
                    TextOpRef::del(end_off, chunk),
                );
            }
            done += chunk;
            bwd_pos = bwd_pos.saturating_sub(chunk);
        }
    }

    /// The forward-delete fast path: one `cur`-position descent per leaf,
    /// then a span-batched [`ContentTree::mutate_run`] pass over the
    /// consecutive visible entries, with the transformed-emit positions
    /// maintained incrementally instead of re-derived by re-descending.
    ///
    /// A forward delete keeps deleting at a constant prepare index (each
    /// chunk makes its characters invisible, pulling the next ones to the
    /// same index), so the per-chunk descent of the naive loop does
    /// redundant work proportional to tree depth × run length.
    fn apply_delete_fwd<F>(
        &mut self,
        lvs: DTRange,
        run: &OpRun,
        emit: bool,
        out: &mut F,
        observe: &mut dyn FnMut(CrdtChange),
    ) where
        F: FnMut(DTRange, TextOpRef<'_>),
    {
        let n = lvs.len();
        let mut done = 0usize;
        // Reusable piece buffer (see [`DelPiece`]): per-run allocation here
        // is per-op cost on delete-heavy traces.
        let mut pieces = std::mem::take(&mut self.delete_scratch);
        while done < n {
            let (cursor, end_off) = self.tree.cursor_at_cur_unit(run.loc.start);
            pieces.clear();
            let mut remaining = n - done;
            // Number of end-visible units before the next target: starts at
            // the descent's answer; skipped (cur-invisible) entries that
            // are still end-visible push later targets right, while pieces
            // just deleted stop counting — exactly what a fresh descent
            // would report.
            let mut emit_pos = end_off;
            {
                let tree = &mut self.tree;
                let ins_loc = &mut self.ins_loc;
                tree.mutate_run(
                    &cursor,
                    |e: &CrdtSpan, off| {
                        if remaining == 0 {
                            return RunStep::Stop;
                        }
                        if e.width_cur() == 0 {
                            debug_assert_eq!(off, 0);
                            emit_pos += e.width_end();
                            return RunStep::Skip;
                        }
                        debug_assert_eq!(e.sp, SpState::Ins);
                        let take = remaining.min(e.len() - off);
                        // ALLOC: pooled delete scratch, capacity retained across walks
                        pieces.push(DelPiece {
                            ids: (e.id.start + off..e.id.start + off + take).into(),
                            was_deleted: e.se_deleted,
                            emit_pos,
                        });
                        remaining -= take;
                        RunStep::Mutate(take)
                    },
                    |e| {
                        debug_assert_eq!(e.sp, SpState::Ins);
                        e.sp = SpState::Del(1);
                        e.se_deleted = true;
                    },
                    &mut |e: &CrdtSpan, leaf| {
                        ins_loc.set(e.id, leaf);
                    },
                );
            }
            debug_assert!(!pieces.is_empty(), "descent landed on a mutable entry");
            self.seed_cache(cursor.leaf);
            for p in &pieces {
                let chunk = p.ids.len();
                let events: DTRange = (lvs.start + done..lvs.start + done + chunk).into();
                self.del_targets.record(events, p.ids, true);
                observe(CrdtChange::Del {
                    events,
                    target: p.ids,
                    fwd: true,
                });
                if emit && !p.was_deleted {
                    out(events, TextOpRef::del(p.emit_pos, chunk));
                }
                done += chunk;
            }
        }
        self.delete_scratch = pieces;
    }

    /// Validates tree invariants (testing).
    pub fn check(&self) {
        self.tree.check();
    }
}
impl<const N: usize> Tracker<N> {
    /// Debug helper: dumps the record sequence (id range, sp, se) in order.
    pub fn dump_entries(&self) -> Vec<(DTRange, String, bool)> {
        self.tree
            .iter()
            .map(|e| (e.id, format!("{:?}", e.sp), e.se_deleted))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn del_target_directions() {
        // Forward run: events 20..24 delete ids 10..14 in order.
        let mut idx = DelTargetIndex::default();
        idx.record((20..24).into(), (10..14).into(), true);
        assert_eq!(idx.target_of(20), 10);
        assert_eq!(idx.target_of(23), 13);
        assert_eq!(idx.run_at(20, 24), ((10..14).into(), 4));
        // Bounded by the queried event range.
        assert_eq!(idx.run_at(21, 23), ((11..13).into(), 2));
        // Backward run: events 30..34 delete ids 13, 12, 11, 10.
        let mut idx = DelTargetIndex::default();
        idx.record((30..34).into(), (10..14).into(), false);
        assert_eq!(idx.target_of(30), 13);
        assert_eq!(idx.target_of(33), 10);
        assert_eq!(idx.run_at(30, 34), ((10..14).into(), 4));
        assert_eq!(idx.run_at(31, 33), ((11..13).into(), 2));
        // Singleton in the middle of nothing.
        let mut idx = DelTargetIndex::default();
        idx.record((5..6).into(), (40..41).into(), true);
        assert_eq!(idx.run_at(5, 6), ((40..41).into(), 1));
    }

    #[test]
    fn del_target_runs_recorded_piecewise() {
        // Two separately recorded forward chunks with contiguous targets
        // coalesce on lookup — and a direction flip breaks the run.
        let mut idx = DelTargetIndex::default();
        idx.record((0..2).into(), (100..102).into(), true);
        idx.record((2..4).into(), (102..104).into(), true);
        assert_eq!(idx.run_at(0, 4), ((100..104).into(), 4));
        idx.record((4..6).into(), (98..100).into(), false);
        assert_eq!(idx.run_at(3, 6), ((103..104).into(), 1));
        assert_eq!(idx.run_at(4, 6), ((98..100).into(), 2));
    }

    #[test]
    fn crdt_span_split_merge() {
        let mut s = CrdtSpan {
            id: (10..15).into(),
            origin_left: 3,
            origin_right: 7,
            sp: SpState::Ins,
            se_deleted: false,
        };
        let tail = s.truncate(2);
        assert_eq!(s.id, (10..12).into());
        assert_eq!(tail.id, (12..15).into());
        assert_eq!(tail.origin_left, 11);
        assert_eq!(tail.origin_right, 7);
        let mut a = s;
        assert!(a.can_append(&tail));
        a.append(tail);
        assert_eq!(a.id, (10..15).into());
        // Different states do not merge.
        let mut other = a;
        let t2 = other.truncate(2);
        let mut t2_del = t2;
        t2_del.sp = SpState::Del(1);
        assert!(!other.can_append(&t2_del));
    }

    #[test]
    fn fresh_tracker_has_placeholder() {
        let t: Tracker = Tracker::new();
        assert_eq!(t.num_records(), 1);
        // The placeholder is visible in both dimensions.
        let w = t.tree.total_widths();
        assert_eq!(w.cur, UNDERWATER_LEN);
        assert_eq!(w.end, UNDERWATER_LEN);
    }
}
