//! A local editing session: the glue layer a text editor sits on.
//!
//! [`Session`] owns an [`OpLog`] and a live [`Branch`] and adds the three
//! things every real editor needs on top of the algorithm:
//!
//! * **selection maintenance** — remote merges move the local caret and
//!   selection with the text (via [`crate::cursor`]);
//! * **undo/redo over the event graph** — undo never rewrites history
//!   (events are immutable, §2.2); it appends *inverse* events. Undoing an
//!   insertion deletes exactly the inserted characters that still survive
//!   (located by replay, like [`OpLog::blame`]); undoing a deletion
//!   re-inserts the removed text at its transformed position;
//! * **an outbox** — every local operation produces the [`EventBundle`]
//!   to broadcast, ready for the replication layer.
//!
//! Nothing here adds persistent state beyond the event graph itself: undo
//! stacks hold event ranges and recovered text, and the document remains a
//! pure function of the graph.

use crate::bundle::{BundleError, EventBundle};
use crate::cursor::{transform_selection, Selection};
use crate::tracker::Tracker;
use crate::{Branch, OpLog};
use eg_dag::{AgentId, Frontier};
use eg_rle::{DTRange, HasLength};

/// What a local operation did, for inversion.
#[derive(Debug, Clone)]
enum UndoRecord {
    /// We inserted the events `lvs`; undo deletes the surviving chars.
    Insert {
        /// The insert events.
        lvs: DTRange,
    },
    /// We deleted `text` at `pos` (document coordinates at deletion time,
    /// version `at` directly after the deletion); undo re-inserts it.
    Delete {
        /// Index at deletion time.
        pos: usize,
        /// The removed text.
        text: String,
        /// The version right after the deletion.
        at: Frontier,
        /// The (ultimate-original) insert events that created the deleted
        /// characters, in document order. Restoring the text aliases the
        /// new events to these, so that undoing the *original* insertion
        /// later also removes restored copies.
        origins: Vec<DTRange>,
        /// The (ultimate-original) insert event of the character
        /// immediately left of the deletion point, if any. Restores anchor
        /// after this character when it is still visible, which keeps
        /// undo/redo chains positionally stable across intervening
        /// deletions (raw index transforms collapse at deleted ranges).
        left_anchor: Option<DTRange>,
    },
}

/// The outcome of [`Session::merge_remote`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeOutcome {
    /// New events applied; the document and selection were updated.
    Applied,
    /// Every event was already known.
    Duplicate,
    /// The bundle is causally premature; feed its dependencies first (the
    /// replication layer's causal buffer normally prevents this).
    MissingParents,
    /// The bundle was malformed and ignored.
    Rejected,
}

/// A complete local editing session for one user.
///
/// # Examples
///
/// ```
/// use egwalker::session::Session;
///
/// let mut s = Session::new("alice");
/// s.insert(0, "Helo!");
/// s.set_caret(3);
/// s.insert_at_caret("l");
/// assert_eq!(s.text(), "Hello!");
/// assert!(s.undo()); // removes the "l"
/// assert_eq!(s.text(), "Helo!");
/// assert!(s.redo());
/// assert_eq!(s.text(), "Hello!");
/// ```
#[derive(Debug)]
pub struct Session {
    /// The full editing history (shared truth).
    pub oplog: OpLog,
    /// The live document.
    pub branch: Branch,
    agent: AgentId,
    selection: Selection,
    undo_stack: Vec<UndoRecord>,
    redo_stack: Vec<UndoRecord>,
    outbox: Vec<EventBundle>,
    /// Pairs `(replacement, original)` of equal-length LV ranges: the
    /// characters inserted by `replacement` are undo-restored copies of
    /// the characters inserted by `original` (always an ultimate original,
    /// never itself a replacement).
    aliases: Vec<(DTRange, DTRange)>,
    /// Reused walker scratch state: every merge in the session drives the
    /// same tracker, so its slab / index / scratch capacity is paid once.
    tracker: Tracker,
}

impl Session {
    /// Starts an empty session for the named user.
    pub fn new(name: &str) -> Self {
        let mut oplog = OpLog::new();
        let agent = oplog.get_or_create_agent(name);
        Session {
            oplog,
            branch: Branch::new(),
            agent,
            selection: Selection::caret(0),
            undo_stack: Vec::new(),
            redo_stack: Vec::new(),
            outbox: Vec::new(),
            aliases: Vec::new(),
            tracker: Tracker::new(),
        }
    }

    /// Merges all new oplog events into the branch, reusing the session's
    /// tracker so repeated merges allocate (almost) nothing.
    fn merge_branch(&mut self) {
        self.branch.merge_reusing(&self.oplog, &mut self.tracker);
    }

    /// The current document text.
    pub fn text(&self) -> String {
        self.branch.content.to_string()
    }

    /// The document length in characters.
    pub fn len_chars(&self) -> usize {
        self.branch.len_chars()
    }

    /// The current selection.
    pub fn selection(&self) -> Selection {
        self.selection
    }

    /// Places the caret (collapsing any selection).
    ///
    /// # Panics
    ///
    /// Panics if `pos` is past the end of the document.
    pub fn set_caret(&mut self, pos: usize) {
        assert!(pos <= self.len_chars(), "caret out of bounds");
        self.selection = Selection::caret(pos);
    }

    /// Selects `[anchor, head]`.
    ///
    /// # Panics
    ///
    /// Panics if either end is past the end of the document.
    pub fn select(&mut self, anchor: usize, head: usize) {
        assert!(
            anchor <= self.len_chars() && head <= self.len_chars(),
            "selection out of bounds"
        );
        self.selection = Selection { anchor, head };
    }

    /// Bundles generated by local edits since the last call, for
    /// broadcasting. Draining resets the outbox.
    pub fn take_outbox(&mut self) -> Vec<EventBundle> {
        std::mem::take(&mut self.outbox)
    }

    // ------------------------------------------------------------------
    // Local edits.
    // ------------------------------------------------------------------

    /// Inserts `text` at `pos`, recording undo and outbox entries.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is past the end of the document or `text` is empty.
    pub fn insert(&mut self, pos: usize, text: &str) {
        assert!(pos <= self.len_chars(), "insert out of bounds");
        let before = self.branch.version.clone();
        let lvs = self.oplog.add_insert_at(self.agent, &before, pos, text);
        self.merge_branch();
        self.undo_stack.push(UndoRecord::Insert { lvs });
        self.redo_stack.clear();
        self.outbox.push(self.oplog.bundle_since_local(&before));
        // A local insert moves the caret to the end of the typed text.
        let n = text.chars().count();
        self.selection = Selection::caret(pos + n);
    }

    /// Inserts at the caret (replacing the selection if any).
    pub fn insert_at_caret(&mut self, text: &str) {
        if !self.selection.is_caret() {
            self.delete_selection();
        }
        let pos = self.selection.head;
        self.insert(pos, text);
    }

    /// Deletes `len` characters at `pos`, recording undo and outbox
    /// entries.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or empty.
    pub fn delete(&mut self, pos: usize, len: usize) {
        assert!(pos + len <= self.len_chars(), "delete out of bounds");
        let removed = self.branch.content.slice_to_string(pos, len);
        let origins = self.insert_origins(pos, len);
        let left_anchor = self.left_anchor_of(pos);
        let before = self.branch.version.clone();
        self.oplog.add_delete_at(self.agent, &before, pos, len);
        self.merge_branch();
        self.undo_stack.push(UndoRecord::Delete {
            pos,
            text: removed,
            at: self.branch.version.clone(),
            origins,
            left_anchor,
        });
        self.redo_stack.clear();
        self.outbox.push(self.oplog.bundle_since_local(&before));
        self.selection = Selection::caret(pos);
    }

    /// Deletes the selected range (no-op for a caret).
    pub fn delete_selection(&mut self) {
        let (lo, hi) = self.selection.range();
        if lo < hi {
            self.delete(lo, hi - lo);
        }
    }

    /// Backspace: deletes the character before the caret (or the
    /// selection).
    pub fn backspace(&mut self) {
        if !self.selection.is_caret() {
            self.delete_selection();
            return;
        }
        let pos = self.selection.head;
        if pos > 0 {
            self.delete(pos - 1, 1);
        }
    }

    // ------------------------------------------------------------------
    // Remote merges.
    // ------------------------------------------------------------------

    /// Ingests a remote bundle, updating the document and transforming
    /// the selection across the merged operations.
    pub fn merge_remote(&mut self, bundle: &EventBundle) -> MergeOutcome {
        match self.oplog.apply_bundle(bundle) {
            Ok(new) if new.is_empty() => MergeOutcome::Duplicate,
            Ok(_) => {
                let from = self.branch.version.clone();
                let tip = self.oplog.version().clone();
                let ops = self.oplog.diff_versions(&from, &tip);
                self.merge_branch();
                self.selection = transform_selection(self.selection, &ops);
                MergeOutcome::Applied
            }
            Err(BundleError::MissingParents(_)) => MergeOutcome::MissingParents,
            Err(BundleError::Malformed(_)) => MergeOutcome::Rejected,
        }
    }

    // ------------------------------------------------------------------
    // Undo / redo.
    // ------------------------------------------------------------------

    /// Undoes the most recent local operation (appending inverse events).
    ///
    /// Returns `false` if there is nothing to undo. Undo interacts
    /// correctly with concurrent remote edits: undoing an insertion
    /// removes exactly the surviving inserted characters; undoing a
    /// deletion restores the text at its transformed position.
    pub fn undo(&mut self) -> bool {
        let Some(record) = self.undo_stack.pop() else {
            return false;
        };
        let inverse = self.apply_inverse(&record);
        self.redo_stack.push(inverse);
        true
    }

    /// Re-applies the most recently undone operation.
    pub fn redo(&mut self) -> bool {
        let Some(record) = self.redo_stack.pop() else {
            return false;
        };
        let inverse = self.apply_inverse(&record);
        self.undo_stack.push(inverse);
        true
    }

    /// Applies the inverse of `record`, returning the record that undoes
    /// *that* (for the opposite stack).
    fn apply_inverse(&mut self, record: &UndoRecord) -> UndoRecord {
        match record {
            UndoRecord::Insert { lvs } => {
                // Locate the surviving characters inserted by `lvs` (or by
                // undo-restores of them) and delete them, back to front.
                let ranges = self.positions_of(*lvs);
                let mut removed_text = String::new();
                let mut origins: Vec<DTRange> = Vec::new();
                let mut first_pos = self.selection.head.min(self.len_chars());
                for &(pos, len) in ranges.iter() {
                    origins.extend(self.insert_origins(pos, len));
                }
                for &(pos, len) in ranges.iter().rev() {
                    removed_text.insert_str(0, &self.branch.content.slice_to_string(pos, len));
                    let before = self.branch.version.clone();
                    self.oplog.add_delete_at(self.agent, &before, pos, len);
                    self.merge_branch();
                    self.outbox.push(self.oplog.bundle_since_local(&before));
                    first_pos = pos;
                }
                if !ranges.is_empty() {
                    self.selection = Selection::caret(first_pos);
                }
                let left_anchor = self.left_anchor_of(first_pos);
                UndoRecord::Delete {
                    pos: first_pos,
                    text: removed_text,
                    at: self.branch.version.clone(),
                    origins,
                    left_anchor,
                }
            }
            UndoRecord::Delete {
                pos,
                text,
                at,
                origins,
                left_anchor,
            } => {
                if text.is_empty() {
                    // The deletion had already removed nothing (fully
                    // overlapped by concurrent deletes); nothing to restore.
                    return UndoRecord::Insert {
                        lvs: DTRange::from(0..0),
                    };
                }
                // Re-anchor after the character left of the deletion point
                // if it is still visible; otherwise fall back to index
                // transformation.
                let anchored =
                    left_anchor.and_then(|a| self.positions_of(a).last().map(|&(p, l)| p + l));
                let pos = anchored.unwrap_or_else(|| {
                    let tip = self.oplog.version().clone();
                    let ops = self.oplog.diff_versions(at, &tip);
                    ops.iter().fold(*pos, |p, op| {
                        crate::cursor::transform_position(p, op, crate::cursor::Bias::Left)
                    })
                });
                let pos = pos.min(self.len_chars());
                let before = self.branch.version.clone();
                let lvs = self.oplog.add_insert_at(self.agent, &before, pos, text);
                self.merge_branch();
                self.outbox.push(self.oplog.bundle_since_local(&before));
                self.selection = Selection::caret(pos + text.chars().count());
                // The restored characters stand for the originals.
                let mut cursor = lvs.start;
                for &orig in origins {
                    let repl: DTRange = (cursor..cursor + orig.len()).into();
                    cursor += orig.len();
                    self.aliases.push((repl, orig));
                }
                UndoRecord::Insert { lvs }
            }
        }
    }

    /// The ultimate-original insert event of the character left of `pos`,
    /// if any.
    fn left_anchor_of(&self, pos: usize) -> Option<DTRange> {
        if pos == 0 {
            return None;
        }
        self.insert_origins(pos - 1, 1).pop()
    }

    /// The ultimate-original insert events behind the characters at
    /// `[pos, pos + len)`, in document order (replacement LVs resolved
    /// through the alias table).
    fn insert_origins(&self, pos: usize, len: usize) -> Vec<DTRange> {
        let mut out: Vec<DTRange> = Vec::new();
        let mut doc_pos = 0usize;
        let want: DTRange = (pos..pos + len).into();
        for span in self.oplog.blame() {
            let span_doc: DTRange = (doc_pos..doc_pos + span.len()).into();
            doc_pos = span_doc.end;
            let Some(hit_doc) = span_doc.intersect(&want) else {
                continue;
            };
            let offset = hit_doc.start - span_doc.start;
            let lvs: DTRange =
                (span.lvs.start + offset..span.lvs.start + offset + hit_doc.len()).into();
            for resolved in self.resolve_to_originals(lvs) {
                match out.last_mut() {
                    Some(last) if last.end == resolved.start => last.end = resolved.end,
                    _ => out.push(resolved),
                }
            }
        }
        out
    }

    /// Maps an insert-event range through the alias table to the
    /// ultimate-original events it stands for (aliases always point at
    /// ultimate originals, so one pass suffices). Unaliased sub-ranges map
    /// to themselves.
    fn resolve_to_originals(&self, lvs: DTRange) -> Vec<DTRange> {
        let mut out = Vec::new();
        let mut rest = lvs;
        while !rest.is_empty() {
            let mut matched = None;
            for &(repl, orig) in &self.aliases {
                if let Some(overlap) = repl.intersect(&rest) {
                    if overlap.start == rest.start {
                        let o = orig.start + (overlap.start - repl.start);
                        matched = Some((overlap.len(), DTRange::from(o..o + overlap.len())));
                        break;
                    }
                }
            }
            let (consumed, resolved) = match matched {
                Some((n, orig)) => (n, orig),
                None => {
                    // Plain prefix up to the next alias start.
                    let next_alias = self
                        .aliases
                        .iter()
                        .filter_map(|(repl, _)| repl.intersect(&rest).map(|o| o.start))
                        .filter(|&s| s > rest.start)
                        .min()
                        .unwrap_or(rest.end);
                    let n = next_alias - rest.start;
                    (n, DTRange::from(rest.start..rest.start + n))
                }
            };
            out.push(resolved);
            rest.start += consumed;
        }
        out
    }

    /// Current document positions of the surviving characters inserted by
    /// the events `lvs` — or by undo-restored copies of them — as
    /// ascending `(pos, len)` runs.
    fn positions_of(&self, lvs: DTRange) -> Vec<(usize, usize)> {
        // Resolve the query to ultimate originals first (the queried range
        // may itself be a restored copy), then expand to the originals
        // plus every replacement standing for them.
        let resolved = self.resolve_to_originals(lvs);
        let mut targets: Vec<DTRange> = resolved.clone();
        for &(repl, orig) in &self.aliases {
            for r in &resolved {
                if let Some(overlap) = orig.intersect(r) {
                    let start = repl.start + (overlap.start - orig.start);
                    targets.push((start..start + overlap.len()).into());
                }
            }
        }
        let mut out: Vec<(usize, usize)> = Vec::new();
        let mut pos = 0usize;
        for span in self.oplog.blame() {
            let len = span.len();
            for target in &targets {
                if let Some(hit) = span.lvs.intersect(target) {
                    let offset = hit.start - span.lvs.start;
                    let start = pos + offset;
                    let hit_len = hit.len();
                    match out.last_mut() {
                        Some((p, l)) if *p + *l == start => *l += hit_len,
                        _ => out.push((start, hit_len)),
                    }
                }
            }
            pos += len;
        }
        out.sort_unstable();
        // Merge adjacent/overlapping runs defensively.
        let mut merged: Vec<(usize, usize)> = Vec::with_capacity(out.len());
        for (p, l) in out {
            match merged.last_mut() {
                Some((mp, ml)) if *mp + *ml >= p => {
                    let end = (p + l).max(*mp + *ml);
                    *ml = end - *mp;
                }
                _ => merged.push((p, l)),
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typing_and_caret() {
        let mut s = Session::new("alice");
        s.insert(0, "hello");
        assert_eq!(s.selection(), Selection::caret(5));
        s.insert_at_caret(" world");
        assert_eq!(s.text(), "hello world");
        s.set_caret(5);
        s.insert_at_caret(",");
        assert_eq!(s.text(), "hello, world");
    }

    #[test]
    fn selection_replacement() {
        let mut s = Session::new("alice");
        s.insert(0, "the quick fox");
        s.select(4, 9);
        s.insert_at_caret("slow");
        assert_eq!(s.text(), "the slow fox");
    }

    #[test]
    fn backspace_behaviour() {
        let mut s = Session::new("alice");
        s.insert(0, "abc");
        s.backspace();
        assert_eq!(s.text(), "ab");
        s.set_caret(0);
        s.backspace(); // at document start: no-op
        assert_eq!(s.text(), "ab");
        s.select(0, 2);
        s.backspace();
        assert_eq!(s.text(), "");
    }

    #[test]
    fn undo_redo_inserts_and_deletes() {
        let mut s = Session::new("alice");
        s.insert(0, "hello");
        s.insert(5, " world");
        s.delete(0, 1);
        assert_eq!(s.text(), "ello world");

        assert!(s.undo());
        assert_eq!(s.text(), "hello world");
        assert!(s.undo());
        assert_eq!(s.text(), "hello");
        assert!(s.undo());
        assert_eq!(s.text(), "");
        assert!(!s.undo());

        assert!(s.redo());
        assert_eq!(s.text(), "hello");
        assert!(s.redo());
        assert!(s.redo());
        assert_eq!(s.text(), "ello world");
        assert!(!s.redo());
    }

    #[test]
    fn new_edit_clears_redo() {
        let mut s = Session::new("alice");
        s.insert(0, "abc");
        s.undo();
        s.insert(0, "xyz");
        assert!(!s.redo());
        assert_eq!(s.text(), "xyz");
    }

    #[test]
    fn undo_insert_after_remote_edits_removes_only_own_text() {
        let mut alice = Session::new("alice");
        let mut bob = Session::new("bob");
        alice.insert(0, "shared ");
        for b in alice.take_outbox() {
            bob.merge_remote(&b);
        }
        // Alice types; bob concurrently types elsewhere.
        alice.insert(7, "ALICE");
        bob.insert(0, "BOB ");
        for b in bob.take_outbox() {
            alice.merge_remote(&b);
        }
        assert_eq!(alice.text(), "BOB shared ALICE");

        // Undo must remove only alice's "ALICE".
        alice.undo();
        assert_eq!(alice.text(), "BOB shared ");
        // And the undo replicates to bob.
        for b in alice.take_outbox() {
            bob.merge_remote(&b);
        }
        assert_eq!(bob.text(), "BOB shared ");
    }

    #[test]
    fn undo_insert_partially_deleted_by_remote() {
        let mut alice = Session::new("alice");
        let mut bob = Session::new("bob");
        alice.insert(0, "0123456789");
        for b in alice.take_outbox() {
            bob.merge_remote(&b);
        }
        alice.insert(5, "XXXX"); // "01234XXXX56789"
        for b in alice.take_outbox() {
            bob.merge_remote(&b);
        }
        // Bob deletes a range overlapping half of alice's insert.
        bob.delete(7, 4); // removes "XX56" → "01234XX789"
        for b in bob.take_outbox() {
            alice.merge_remote(&b);
        }
        assert_eq!(alice.text(), "01234XX789");
        // Undoing alice's insert removes only the surviving "XX".
        alice.undo();
        assert_eq!(alice.text(), "01234789");
    }

    #[test]
    fn undo_delete_restores_text() {
        let mut s = Session::new("alice");
        s.insert(0, "keep this text");
        s.delete(5, 5); // removes "this "
        assert_eq!(s.text(), "keep text");
        s.undo();
        assert_eq!(s.text(), "keep this text");
        s.redo();
        assert_eq!(s.text(), "keep text");
    }

    #[test]
    fn undo_delete_with_concurrent_remote_insert_before() {
        let mut alice = Session::new("alice");
        let mut bob = Session::new("bob");
        alice.insert(0, "abcdef");
        for b in alice.take_outbox() {
            bob.merge_remote(&b);
        }
        alice.delete(3, 2); // removes "de" → "abcf"
        bob.insert(0, ">> ");
        for b in bob.take_outbox() {
            alice.merge_remote(&b);
        }
        assert_eq!(alice.text(), ">> abcf");
        alice.undo(); // restore "de" at its shifted position
        assert_eq!(alice.text(), ">> abcdef");
    }

    #[test]
    fn remote_merge_transforms_selection() {
        let mut alice = Session::new("alice");
        let mut bob = Session::new("bob");
        alice.insert(0, "The fox jumps");
        for b in alice.take_outbox() {
            bob.merge_remote(&b);
        }
        // Alice selects "fox".
        alice.select(4, 7);
        // Bob inserts before the selection.
        bob.insert(4, "quick ");
        for b in bob.take_outbox() {
            alice.merge_remote(&b);
        }
        assert_eq!(alice.text(), "The quick fox jumps");
        let sel = alice.selection();
        assert_eq!((sel.anchor, sel.head), (10, 13));
        let (lo, hi) = sel.range();
        assert_eq!(&alice.text()[lo..hi], "fox");
    }

    #[test]
    fn outbox_replicates_everything() {
        let mut alice = Session::new("alice");
        let mut bob = Session::new("bob");
        alice.insert(0, "one ");
        alice.insert(4, "two ");
        alice.delete(0, 4);
        alice.undo();
        for b in alice.take_outbox() {
            assert_eq!(bob.merge_remote(&b), MergeOutcome::Applied);
        }
        assert_eq!(bob.text(), alice.text());
        assert!(alice.take_outbox().is_empty());
    }

    #[test]
    fn duplicate_and_premature_bundles() {
        let mut alice = Session::new("alice");
        let mut bob = Session::new("bob");
        alice.insert(0, "a");
        let first = alice.take_outbox();
        alice.insert(1, "b");
        let second = alice.take_outbox();
        assert_eq!(
            bob.merge_remote(&second[0]),
            MergeOutcome::MissingParents,
            "session-level merge does not buffer"
        );
        assert_eq!(bob.merge_remote(&first[0]), MergeOutcome::Applied);
        assert_eq!(bob.merge_remote(&first[0]), MergeOutcome::Duplicate);
        assert_eq!(bob.merge_remote(&second[0]), MergeOutcome::Applied);
        assert_eq!(bob.text(), "ab");
    }
}
