//! Converting event graphs into CRDT operation streams.
//!
//! Traditional CRDTs consume ID-based operations (`insert X with origins
//! L/R`, `delete target T`), not index-based events. To benchmark such a
//! CRDT on an editing trace, the trace must first be converted — the paper
//! does this by "simulating (in memory) a set of collaborating peers"
//! (§A.5). Here the simulation *is* an Eg-walker replay: the tracker already
//! resolves every insertion's origins and every deletion's target, so a
//! full-graph walk with an observer yields exactly the CRDT operation
//! stream.

use crate::tracker::{is_underwater_id, CrdtChange, Tracker, ORIGIN_END, ORIGIN_START};
use crate::{OpLog, LV};
use eg_dag::walk::plan_walk;
use eg_dag::Frontier;
use eg_rle::{DTRange, HasLength};

/// An ID-based CRDT operation (run-length encoded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrdtOp {
    /// Insert a run of characters.
    Ins {
        /// IDs of the inserted characters (the insert events' LVs).
        id: DTRange,
        /// ID of the character left of the run at insert time.
        origin_left: Option<LV>,
        /// ID of the character right of the run at insert time.
        origin_right: Option<LV>,
        /// The inserted text.
        content: String,
    },
    /// Mark a run of characters deleted.
    Del {
        /// IDs of the deleted characters (ascending).
        target: DTRange,
    },
}

/// Replays the full event graph and returns the equivalent CRDT operation
/// stream, in a causal order.
pub fn to_crdt_ops(oplog: &OpLog) -> Vec<CrdtOp> {
    let mut ops: Vec<CrdtOp> = Vec::new();
    if oplog.is_empty() {
        return ops;
    }
    let spans = [DTRange::from(0..oplog.len())];
    let plan = plan_walk(&oplog.graph, &Frontier::root(), &spans, &spans);
    let mut tracker: Tracker = Tracker::new();
    let mut sink = |_lvs: DTRange, _op: crate::TextOpRef<'_>| {};
    for step in &plan {
        for r in step.retreat.iter().rev() {
            tracker.retreat(oplog, *r);
        }
        for r in &step.advance {
            tracker.advance(oplog, *r);
        }
        tracker.apply_range_observed(oplog, step.consume, false, &mut sink, &mut |change| {
            match change {
                CrdtChange::Ins { span } => {
                    // In a full replay from the root the placeholder stands
                    // for the (empty) base document, so an origin that
                    // resolves to it means "document end".
                    let origin_left = if span.origin_left == ORIGIN_START {
                        None
                    } else {
                        debug_assert!(!is_underwater_id(span.origin_left));
                        Some(span.origin_left)
                    };
                    let origin_right =
                        if span.origin_right == ORIGIN_END || is_underwater_id(span.origin_right) {
                            None
                        } else {
                            Some(span.origin_right)
                        };
                    let (_, run) = oplog.op_at(span.id.start);
                    let content = oplog.content_slice(run.content.expect("insert content"));
                    ops.push(CrdtOp::Ins {
                        id: span.id,
                        origin_left,
                        origin_right,
                        content: content.chars().take(span.id.len()).collect(),
                    });
                }
                CrdtChange::Del { target, .. } => {
                    ops.push(CrdtOp::Del { target });
                }
            }
        });
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convert_simple() {
        let mut oplog = OpLog::new();
        let a = oplog.get_or_create_agent("alice");
        oplog.add_insert(a, 0, "ab");
        oplog.add_delete(a, 0, 1);
        let ops = to_crdt_ops(&oplog);
        assert_eq!(ops.len(), 2);
        match &ops[0] {
            CrdtOp::Ins {
                id,
                origin_left,
                origin_right,
                content,
            } => {
                assert_eq!(*id, (0..2).into());
                assert_eq!(*origin_left, None);
                assert_eq!(*origin_right, None);
                assert_eq!(content, "ab");
            }
            other => panic!("unexpected {other:?}"),
        }
        match &ops[1] {
            CrdtOp::Del { target } => assert_eq!(*target, (0..1).into()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn convert_concurrent_origins() {
        let mut oplog = OpLog::new();
        let a = oplog.get_or_create_agent("alice");
        let b = oplog.get_or_create_agent("bob");
        oplog.add_insert(a, 0, "xy");
        let base = oplog.version().clone();
        oplog.add_insert_at(a, &base, 1, "A");
        oplog.add_insert_at(b, &base, 1, "B");
        let ops = to_crdt_ops(&oplog);
        assert_eq!(ops.len(), 3);
        // Both concurrent inserts share the origins x (left) and y (right).
        for op in &ops[1..] {
            match op {
                CrdtOp::Ins {
                    origin_left,
                    origin_right,
                    ..
                } => {
                    assert_eq!(*origin_left, Some(0));
                    assert_eq!(*origin_right, Some(1));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
