//! A generic order-statistic B-tree over run-length-encoded spans.
//!
//! This is the "ranked B-tree" of the paper's §3.4: a balanced tree whose
//! leaves hold RLE entries and whose internal nodes cache, per child, the
//! total width of the subtree in **two dimensions**. The Eg-walker tracker
//! uses the dimensions for "number of characters visible in the prepare
//! version" (`cur`) and "… in the effect version" (`end`); the rope uses the
//! same width in both.
//!
//! Supported queries and updates, all `O(log n)`:
//!
//! * find the entry containing the *k*-th visible unit in the `cur`
//!   dimension, simultaneously reporting the `end`-dimension offset of that
//!   unit ([`ContentTree::cursor_at_cur_unit`]);
//! * insert an entry at a cursor ([`ContentTree::insert_at`]), with RLE
//!   append to the preceding entry when possible;
//! * mutate the state of a sub-range of an entry
//!   ([`ContentTree::mutate_entry`]), splitting as needed and repairing the
//!   cached widths along the path to the root;
//! * walk *upwards* from a leaf to compute the global offset of an entry
//!   ([`ContentTree::offset_of`]) — used after ID-index lookups;
//! * leaf-split notifications so callers can maintain an ID → leaf index
//!   (the paper's "second B-tree").
//!
//! Entries must be **uniform**: within one entry, every unit is either
//! visible or invisible in each dimension (so an entry's width per dimension
//! is `0` or `len`). The tree relies on this to convert width offsets to raw
//! offsets. Entries with mixed state must be split by the caller first —
//! the Eg-walker tracker's spans are uniform by construction.

mod tree;

pub use tree::{ContentTree, Cursor, NodeIdx, RunStep, Widths, DEFAULT_FANOUT, NODE_IDX_NONE};

use eg_rle::{HasLength, MergableSpan, SplitableSpan};

/// An entry storable in a [`ContentTree`].
pub trait TreeEntry: Clone + HasLength + SplitableSpan + MergableSpan + std::fmt::Debug {
    /// Width of the entry in the `cur` (primary / prepare) dimension.
    ///
    /// Must equal `0` or `self.len()`.
    fn width_cur(&self) -> usize;

    /// Width of the entry in the `end` (secondary / effect) dimension.
    ///
    /// Must equal `0` or `self.len()`.
    fn width_end(&self) -> usize;
}
