//! A generic order-statistic B-tree over run-length-encoded spans.
//!
//! This is the "ranked B-tree" of the paper's §3.4: a balanced tree whose
//! leaves hold RLE entries and whose internal nodes cache, per child, the
//! total width of the subtree in **two dimensions**. The Eg-walker tracker
//! uses the dimensions for "number of characters visible in the prepare
//! version" (`cur`) and "… in the effect version" (`end`); the rope uses the
//! same width in both.
//!
//! Supported queries and updates, all `O(log n)`:
//!
//! * find the entry containing the *k*-th visible unit in the `cur`
//!   dimension, simultaneously reporting the `end`-dimension offset of that
//!   unit ([`ContentTree::cursor_at_cur_unit`]);
//! * insert an entry at a cursor ([`ContentTree::insert_at`]), with RLE
//!   append to the preceding entry when possible;
//! * mutate the state of a sub-range of an entry
//!   ([`ContentTree::mutate_entry`]), splitting as needed and repairing the
//!   cached widths along the path to the root;
//! * walk *upwards* from a leaf to compute the global offset of an entry
//!   ([`ContentTree::offset_of`]) — used after ID-index lookups;
//! * leaf-split notifications so callers can maintain an ID → leaf index
//!   (the paper's "second B-tree").
//!
//! Entries must be **uniform**: within one entry, every unit is either
//! visible or invisible in each dimension (so an entry's width per dimension
//! is `0` or `len`). The tree relies on this to convert width offsets to raw
//! offsets. Entries with mixed state must be split by the caller first —
//! the Eg-walker tracker's spans are uniform by construction.
//!
//! # Memory layout: typed slab arenas
//!
//! Nodes live in two typed slabs — one `Vec` of leaf nodes, one of internal
//! nodes — addressed by [`LeafIdx`] (a `NonZeroU32` wrapper, so
//! `Option<LeafIdx>` is 4 bytes). Every node stores its payload in inline
//! `[_; N]` arrays plus a length: a leaf is `parent + prev/next chain links
//! + [E; N]`, an internal node is `parent + ([child_id; N], [Widths; N])`.
//! Nodes therefore pack cache-line-dense and allocate nothing individually;
//! heap traffic only happens when a slab's `Vec` doubles.
//!
//! ## Free lists and the reuse contract
//!
//! Leaves emptied by [`ContentTree::delete_cur_range`] and internal nodes
//! that lose their last child are unlinked and parked on per-slab free
//! lists; subsequent splits pop from the free list before growing the slab.
//! [`ContentTree::clear`] truncates both slabs **in place** (dropping entry
//! payloads but keeping the `Vec` capacity), so the next build-up to a
//! similar size performs *zero* allocator calls. The Eg-walker tracker
//! leans on this contract twice: its §3.5 critical-version clears inside a
//! single merge, and whole-tracker reuse across merges.
//!
//! Entries must implement `Default` (vacated inline slots are reset to the
//! default value so any heap memory an entry owns is released eagerly).

mod tree;

pub use tree::{
    ArenaStats, ContentTree, Cursor, LeafIdx, RunStep, TreeIter, Widths, DEFAULT_FANOUT,
};

use eg_rle::{HasLength, MergableSpan, SplitableSpan};

/// An entry storable in a [`ContentTree`].
///
/// `Default` is required by the inline-array node layout: unoccupied slots
/// hold default values, and vacated slots are reset to the default so
/// entry-owned heap memory is released as soon as the entry is removed.
pub trait TreeEntry:
    Clone + Default + HasLength + SplitableSpan + MergableSpan + std::fmt::Debug
{
    /// Width of the entry in the `cur` (primary / prepare) dimension.
    ///
    /// Must equal `0` or `self.len()`.
    fn width_cur(&self) -> usize;

    /// Width of the entry in the `end` (secondary / effect) dimension.
    ///
    /// Must equal `0` or `self.len()`.
    fn width_end(&self) -> usize;
}
