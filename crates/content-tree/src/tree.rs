//! The B-tree implementation. See the crate docs for the design.
//!
//! # Slab layout
//!
//! Leaves and internal nodes live in two separate typed slabs (`Vec`s of
//! fixed-size nodes), addressed by [`LeafIdx`] / `InternalIdx` — thin
//! `NonZeroU32` wrappers, so `Option<LeafIdx>` packs into 4 bytes via the
//! niche. Each node stores its children / widths / entries in inline
//! `[_; N]` arrays plus a length ([`InlineVec`]), so a node is one
//! contiguous block with zero per-node heap allocation: growing the tree
//! only ever allocates when a *slab* doubles.
//!
//! Freed nodes (leaves emptied by [`ContentTree::delete_cur_range`] and
//! internals that lose their last child) park on per-slab free lists and
//! are handed out again by the next split. [`ContentTree::clear`] truncates
//! the slabs in place, so a cleared tree rebuilds to its previous size
//! without touching the allocator — the contract the Eg-walker tracker
//! relies on when it is reused across merge windows.
//!
//! Unlike the previous `Vec`-per-node layout, nodes never overflow their
//! arrays: inserts split *before* writing (`N >= 4` guarantees one split
//! always makes enough room for the at-most-two entries any single
//! operation adds).

use crate::TreeEntry;
use std::num::NonZeroU32;

/// Index of a leaf node in the tree's leaf slab.
///
/// Stored as `slot + 1` in a `NonZeroU32`, so `Option<LeafIdx>` is 4 bytes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct LeafIdx(NonZeroU32);

impl LeafIdx {
    #[inline]
    fn new(slot: usize) -> Self {
        // `slot as u32 + 1` wraps to 0 on overflow, which the constructor
        // rejects — so slab growth past u32::MAX slots panics cleanly.
        LeafIdx(NonZeroU32::new(slot as u32 + 1).expect("leaf slab overflow"))
    }

    #[inline]
    fn from_raw(raw: u32) -> Self {
        LeafIdx(NonZeroU32::new(raw).expect("zero leaf id"))
    }

    #[inline]
    fn raw(self) -> u32 {
        self.0.get()
    }

    #[inline]
    fn slot(self) -> usize {
        (self.0.get() - 1) as usize
    }
}

impl std::fmt::Debug for LeafIdx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.slot())
    }
}

/// Index of an internal node in the tree's internal slab (`slot + 1`).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
#[repr(transparent)]
struct InternalIdx(NonZeroU32);

impl InternalIdx {
    #[inline]
    fn new(slot: usize) -> Self {
        InternalIdx(NonZeroU32::new(slot as u32 + 1).expect("internal slab overflow"))
    }

    #[inline]
    fn from_raw(raw: u32) -> Self {
        InternalIdx(NonZeroU32::new(raw).expect("zero internal id"))
    }

    #[inline]
    fn raw(self) -> u32 {
        self.0.get()
    }

    #[inline]
    fn slot(self) -> usize {
        (self.0.get() - 1) as usize
    }
}

impl std::fmt::Debug for InternalIdx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "I{}", self.slot())
    }
}

/// A node reference: which slab, which slot. All children of one internal
/// node are the same kind (the tree is height-balanced), so internals store
/// raw ids plus a single kind flag rather than this enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeRef {
    Leaf(LeafIdx),
    Internal(InternalIdx),
}

impl NodeRef {
    #[inline]
    fn raw(self) -> u32 {
        match self {
            NodeRef::Leaf(l) => l.raw(),
            NodeRef::Internal(i) => i.raw(),
        }
    }
}

/// Default fanout of a [`ContentTree`]: maximum children per internal node
/// and maximum entries per leaf. Chosen by the `walker_hot` fanout sweep in
/// `crates/bench/benches/walker_hot.rs` — re-run it when the entry type or
/// workload changes materially.
pub const DEFAULT_FANOUT: usize = 16;

/// A fixed-capacity inline vector: `N` slots in the node itself, no heap.
///
/// Invariant: slots at and beyond `len` always hold `T::default()`, so
/// removing an entry releases any heap memory it owns (e.g. a rope chunk's
/// string buffer) immediately rather than when the slot is next written.
#[derive(Clone)]
struct InlineVec<T, const N: usize> {
    items: [T; N],
    len: u32,
}

impl<T, const N: usize> InlineVec<T, N> {
    #[inline]
    fn len(&self) -> usize {
        self.len as usize
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn as_slice(&self) -> &[T] {
        &self.items[..self.len as usize]
    }

    #[inline]
    fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.items[..self.len as usize]
    }
}

impl<T: Default, const N: usize> InlineVec<T, N> {
    fn new() -> Self {
        InlineVec {
            items: std::array::from_fn(|_| T::default()),
            len: 0,
        }
    }

    #[inline]
    fn push(&mut self, v: T) {
        let len = self.len();
        assert!(len < N, "inline vec overflow");
        self.items[len] = v;
        self.len += 1;
    }

    fn insert(&mut self, at: usize, v: T) {
        let len = self.len();
        assert!(len < N && at <= len, "inline vec overflow");
        // Rotate the default at items[len] down to `at`, then overwrite it.
        self.items[at..=len].rotate_right(1);
        self.items[at] = v;
        self.len += 1;
    }

    fn remove(&mut self, at: usize) -> T {
        let len = self.len();
        assert!(at < len, "inline vec index out of bounds");
        let v = std::mem::take(&mut self.items[at]);
        // Shift the tail left; the vacated default ends up at len - 1.
        self.items[at..len].rotate_left(1);
        self.len -= 1;
        v
    }

    /// Moves `[at..len)` into a fresh `InlineVec`, leaving defaults behind.
    fn split_off_tail(&mut self, at: usize) -> Self {
        let mut out = Self::new();
        for i in at..self.len() {
            out.push(std::mem::take(&mut self.items[i])); // ALLOC: InlineVec, fixed inline capacity, no heap
        }
        self.len = at as u32;
        out
    }

    fn clear(&mut self) {
        for i in 0..self.len() {
            self.items[i] = T::default();
        }
        self.len = 0;
    }
}

impl<T: std::fmt::Debug, const N: usize> std::fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice().iter()).finish()
    }
}

/// Subtree widths in the two tracked dimensions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Widths {
    /// Total width in the `cur` (primary / prepare) dimension.
    pub cur: usize,
    /// Total width in the `end` (secondary / effect) dimension.
    pub end: usize,
    /// Total raw units (every unit counts, visible or not).
    pub raw: usize,
}

impl Widths {
    fn of<E: TreeEntry>(e: &E) -> Self {
        Widths {
            cur: e.width_cur(),
            end: e.width_end(),
            raw: e.len(),
        }
    }

    fn add(&mut self, other: Widths) {
        self.cur += other.cur;
        self.end += other.end;
        self.raw += other.raw;
    }
}

/// A signed change to cached [`Widths`], for the O(depth) incremental
/// repair path (mutations and RLE appends change ancestor totals by a
/// known amount; recomputing node totals per level is O(depth × fanout)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct WidthsDelta {
    cur: isize,
    end: isize,
    raw: isize,
}

impl WidthsDelta {
    /// The delta of adding `w` from nothing.
    fn gain(w: Widths) -> Self {
        WidthsDelta {
            cur: w.cur as isize,
            end: w.end as isize,
            raw: w.raw as isize,
        }
    }

    /// The delta taking `before` to `after`.
    fn change(before: Widths, after: Widths) -> Self {
        WidthsDelta {
            cur: after.cur as isize - before.cur as isize,
            end: after.end as isize - before.end as isize,
            raw: after.raw as isize - before.raw as isize,
        }
    }

    fn accumulate(&mut self, other: WidthsDelta) {
        self.cur += other.cur;
        self.end += other.end;
        self.raw += other.raw;
    }

    fn is_zero(&self) -> bool {
        *self == WidthsDelta::default()
    }

    fn apply(&self, w: &mut Widths) {
        w.cur = (w.cur as isize + self.cur) as usize;
        w.end = (w.end as isize + self.end) as usize;
        w.raw = (w.raw as isize + self.raw) as usize;
    }
}

/// A position in the tree: just before the `offset`-th unit of the
/// `entry_idx`-th entry of leaf `leaf`.
///
/// Cursors are plain value types; any structural tree change invalidates
/// them (re-locate afterwards).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cursor {
    /// The leaf node holding the position.
    pub leaf: LeafIdx,
    /// Entry index within the leaf. May equal the number of entries
    /// (end-of-leaf position).
    pub entry_idx: usize,
    /// Raw-unit offset into the entry. May equal the entry length
    /// (boundary position).
    pub offset: usize,
}

#[derive(Debug, Clone)]
struct InternalNode<const N: usize> {
    parent: Option<InternalIdx>,
    /// `true` when the children are leaves (all children of a node are the
    /// same kind; the tree is height-balanced).
    leaf_children: bool,
    /// Raw child ids (`slot + 1`), interpreted via `leaf_children`.
    children: InlineVec<u32, N>,
    /// Cached total widths of each child's subtree, aligned with `children`.
    widths: InlineVec<Widths, N>,
}

impl<const N: usize> InternalNode<N> {
    fn new() -> Self {
        InternalNode {
            parent: None,
            leaf_children: true,
            children: InlineVec::new(),
            widths: InlineVec::new(),
        }
    }

    #[inline]
    fn child(&self, i: usize) -> NodeRef {
        let raw = self.children.as_slice()[i];
        if self.leaf_children {
            NodeRef::Leaf(LeafIdx::from_raw(raw))
        } else {
            NodeRef::Internal(InternalIdx::from_raw(raw))
        }
    }

    #[inline]
    fn position_of(&self, child_raw: u32) -> usize {
        self.children
            .as_slice()
            .iter()
            .position(|&c| c == child_raw)
            .expect("broken parent pointer")
    }
}

#[derive(Debug, Clone)]
struct LeafNode<E, const N: usize> {
    parent: Option<InternalIdx>,
    /// Previous leaf in sequence order. Needed so an emptied leaf can be
    /// unlinked from the chain in O(1) when it is freed.
    prev: Option<LeafIdx>,
    /// Next leaf in sequence order.
    next: Option<LeafIdx>,
    entries: InlineVec<E, N>,
}

impl<E: TreeEntry, const N: usize> LeafNode<E, N> {
    fn new() -> Self {
        LeafNode {
            parent: None,
            prev: None,
            next: None,
            entries: InlineVec::new(),
        }
    }
}

/// Arena occupancy counters, exposed for tests and diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Leaf slots in the slab (live + free).
    pub leaf_slots: usize,
    /// Internal slots in the slab (live + free).
    pub internal_slots: usize,
    /// Leaf slots parked on the free list.
    pub free_leaves: usize,
    /// Internal slots parked on the free list.
    pub free_internals: usize,
    /// Heap capacity of the leaf slab, in slots.
    pub leaf_capacity: usize,
    /// Heap capacity of the internal slab, in slots.
    pub internal_capacity: usize,
}

/// The order-statistic B-tree. See the crate documentation.
///
/// `N` is the fanout: the maximum number of children of an internal node
/// and of entries in a leaf (`N >= 4`). Larger fanouts mean shallower trees
/// (cheaper descents and width repairs) but more linear scanning within
/// nodes; the sweet spot depends on the entry type and workload, so it is a
/// compile-time parameter swept by the `walker_hot` benchmark.
#[derive(Debug, Clone)]
pub struct ContentTree<E: TreeEntry, const N: usize = DEFAULT_FANOUT> {
    leaves: Vec<LeafNode<E, N>>,
    internals: Vec<InternalNode<N>>,
    free_leaves: Vec<LeafIdx>,
    free_internals: Vec<InternalIdx>,
    root: NodeRef,
    first_leaf: LeafIdx,
}

/// One step of a [`ContentTree::mutate_run`] batch, decided per entry by
/// the caller's policy closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStep {
    /// Mutate the next `n` raw units of the current entry (counting from
    /// the policy's offset), splitting the entry as needed. `n` must be
    /// `> 0` and not exceed the units remaining in the entry.
    Mutate(usize),
    /// Leave the entry untouched and move to the next one in the leaf.
    Skip,
    /// End the batch.
    Stop,
}

impl<E: TreeEntry, const N: usize> Default for ContentTree<E, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: TreeEntry, const N: usize> ContentTree<E, N> {
    /// Creates an empty tree (a single empty leaf).
    pub fn new() -> Self {
        assert!(N >= 4, "fanout must be at least 4");
        let mut tree = ContentTree {
            leaves: Vec::new(),
            internals: Vec::new(),
            free_leaves: Vec::new(),
            free_internals: Vec::new(),
            // Placeholder; fixed up right below once the first leaf exists.
            root: NodeRef::Leaf(LeafIdx::new(0)),
            first_leaf: LeafIdx::new(0),
        };
        let root = tree.alloc_leaf();
        tree.root = NodeRef::Leaf(root);
        tree.first_leaf = root;
        tree
    }

    /// Removes all entries while retaining the slab allocations, so a
    /// cleared tree rebuilds to its previous size without touching the
    /// allocator.
    pub fn clear(&mut self) {
        self.leaves.clear();
        self.internals.clear();
        self.free_leaves.clear();
        self.free_internals.clear();
        let root = self.alloc_leaf();
        self.root = NodeRef::Leaf(root);
        self.first_leaf = root;
    }

    /// Rebuilds a tree from an ordered entry stream — the relocatable
    /// (de)serialization form of the slab arena.
    ///
    /// Entries are packed into leaves left to right and the internal
    /// levels are built bottom-up, so the resulting arena is dense,
    /// defragmented, and valid by construction (no invariant in the input
    /// needs to be trusted beyond each entry being non-empty and
    /// uniform-width, which callers validate before decoding). `notify`
    /// is called once per entry with the leaf that received it, so
    /// callers can repopulate an ID → leaf index (the paper's "second
    /// B-tree") during the load instead of serializing it.
    ///
    /// Round-trips with [`ContentTree::iter`]: feeding a tree's entry
    /// sequence back in produces a tree with identical entries, widths,
    /// and iteration order (the slab *layout* may differ — behaviour, not
    /// layout, is the serialized contract).
    pub fn from_entries<I, NF>(entries: I, mut notify: NF) -> Self
    where
        I: IntoIterator<Item = E>,
        NF: FnMut(&E, LeafIdx),
    {
        assert!(N >= 4, "fanout must be at least 4");
        let mut tree = ContentTree {
            leaves: Vec::new(),
            internals: Vec::new(),
            free_leaves: Vec::new(),
            free_internals: Vec::new(),
            root: NodeRef::Leaf(LeafIdx::new(0)),
            first_leaf: LeafIdx::new(0),
        };
        // Pack entries into full leaves, chained left to right.
        let mut leaf_widths: Vec<Widths> = Vec::new();
        for e in entries {
            debug_assert!(!e.is_empty(), "empty entry in bulk load");
            if tree.leaves.last().map_or(true, |l| l.entries.len() == N) {
                let idx = tree.alloc_leaf();
                if idx.slot() > 0 {
                    let prev = LeafIdx::new(idx.slot() - 1);
                    tree.leaves[prev.slot()].next = Some(idx);
                    tree.leaves[idx.slot()].prev = Some(prev);
                }
                leaf_widths.push(Widths::default());
            }
            let idx = LeafIdx::new(tree.leaves.len() - 1);
            notify(&e, idx);
            leaf_widths.last_mut().unwrap().add(Widths::of(&e));
            tree.leaves[idx.slot()].entries.push(e);
        }
        if tree.leaves.is_empty() {
            // Empty stream: a fresh empty tree.
            let root = tree.alloc_leaf();
            tree.root = NodeRef::Leaf(root);
            tree.first_leaf = root;
            return tree;
        }
        tree.first_leaf = LeafIdx::new(0);
        if tree.leaves.len() == 1 {
            tree.root = NodeRef::Leaf(LeafIdx::new(0));
            return tree;
        }
        // Build internal levels bottom-up until one node spans everything.
        let mut level: Vec<(u32, Widths)> = leaf_widths
            .iter()
            .enumerate()
            .map(|(i, &w)| (LeafIdx::new(i).raw(), w))
            .collect();
        let mut leaf_children = true;
        loop {
            let mut next_level: Vec<(u32, Widths)> = Vec::with_capacity(level.len().div_ceil(N));
            for chunk in level.chunks(N) {
                let idx = tree.alloc_internal();
                let mut total = Widths::default();
                {
                    let node = &mut tree.internals[idx.slot()];
                    node.leaf_children = leaf_children;
                    for &(raw, w) in chunk {
                        node.children.push(raw);
                        node.widths.push(w);
                        total.add(w);
                    }
                }
                for &(raw, _) in chunk {
                    if leaf_children {
                        tree.leaves[LeafIdx::from_raw(raw).slot()].parent = Some(idx);
                    } else {
                        tree.internals[InternalIdx::from_raw(raw).slot()].parent = Some(idx);
                    }
                }
                next_level.push((idx.raw(), total));
            }
            leaf_children = false;
            if next_level.len() == 1 {
                tree.root = NodeRef::Internal(InternalIdx::from_raw(next_level[0].0));
                return tree;
            }
            level = next_level;
        }
    }

    /// Current slab occupancy / capacity counters.
    pub fn arena_stats(&self) -> ArenaStats {
        ArenaStats {
            leaf_slots: self.leaves.len(),
            internal_slots: self.internals.len(),
            free_leaves: self.free_leaves.len(),
            free_internals: self.free_internals.len(),
            leaf_capacity: self.leaves.capacity(),
            internal_capacity: self.internals.capacity(),
        }
    }

    // ------------------------------------------------------------------
    // Slab plumbing.
    // ------------------------------------------------------------------

    fn alloc_leaf(&mut self) -> LeafIdx {
        if let Some(idx) = self.free_leaves.pop() {
            idx
        } else {
            let idx = LeafIdx::new(self.leaves.len());
            self.leaves.push(LeafNode::new());
            idx
        }
    }

    fn alloc_internal(&mut self) -> InternalIdx {
        if let Some(idx) = self.free_internals.pop() {
            idx
        } else {
            let idx = InternalIdx::new(self.internals.len());
            self.internals.push(InternalNode::new());
            idx
        }
    }

    /// Resets a leaf slot and parks it on the free list. Clearing the
    /// entries drops any heap memory the entry type owns.
    fn release_leaf(&mut self, idx: LeafIdx) {
        let l = &mut self.leaves[idx.slot()];
        l.entries.clear();
        l.parent = None;
        l.prev = None;
        l.next = None;
        self.free_leaves.push(idx);
    }

    fn release_internal(&mut self, idx: InternalIdx) {
        let n = &mut self.internals[idx.slot()];
        n.children.clear();
        n.widths.clear();
        n.parent = None;
        n.leaf_children = true;
        self.free_internals.push(idx);
    }

    fn parent_of(&self, node: NodeRef) -> Option<InternalIdx> {
        match node {
            NodeRef::Leaf(l) => self.leaves[l.slot()].parent,
            NodeRef::Internal(i) => self.internals[i.slot()].parent,
        }
    }

    fn set_parent(&mut self, node: NodeRef, parent: Option<InternalIdx>) {
        match node {
            NodeRef::Leaf(l) => self.leaves[l.slot()].parent = parent,
            NodeRef::Internal(i) => self.internals[i.slot()].parent = parent,
        }
    }

    // ------------------------------------------------------------------
    // Read paths.
    // ------------------------------------------------------------------

    /// The total widths of the whole tree.
    pub fn total_widths(&self) -> Widths {
        self.node_total(self.root)
    }

    fn node_total(&self, node: NodeRef) -> Widths {
        let mut total = Widths::default();
        match node {
            NodeRef::Internal(i) => {
                for w in self.internals[i.slot()].widths.as_slice() {
                    total.add(*w);
                }
            }
            NodeRef::Leaf(l) => {
                for e in self.leaves[l.slot()].entries.as_slice() {
                    total.add(Widths::of(e));
                }
            }
        }
        total
    }

    /// The number of entries stored (O(number of leaves)).
    pub fn num_entries(&self) -> usize {
        let mut leaf = Some(self.first_leaf);
        let mut n = 0;
        while let Some(idx) = leaf {
            let l = &self.leaves[idx.slot()];
            n += l.entries.len();
            leaf = l.next;
        }
        n
    }

    /// A cursor at the very start of the tree.
    pub fn cursor_at_start(&self) -> Cursor {
        Cursor {
            leaf: self.first_leaf,
            entry_idx: 0,
            offset: 0,
        }
    }

    /// Finds the `k`-th visible unit in the `cur` dimension.
    ///
    /// Returns the cursor pointing at that unit, along with the unit's
    /// offset in the `end` dimension (the number of `end`-visible units
    /// strictly before it).
    ///
    /// # Panics
    ///
    /// Panics if `k >= total cur width`.
    pub fn cursor_at_cur_unit(&self, mut k: usize) -> (Cursor, usize) {
        let mut end_acc = 0usize;
        let mut node = self.root;
        loop {
            match node {
                NodeRef::Internal(idx) => {
                    let n = &self.internals[idx.slot()];
                    let mut found = None;
                    for (i, w) in n.widths.as_slice().iter().enumerate() {
                        if k < w.cur {
                            found = Some(i);
                            break;
                        }
                        k -= w.cur;
                        end_acc += w.end;
                    }
                    let i = found.expect("cur position out of bounds");
                    node = n.child(i);
                }
                NodeRef::Leaf(idx) => {
                    let l = &self.leaves[idx.slot()];
                    for (i, e) in l.entries.as_slice().iter().enumerate() {
                        let wc = e.width_cur();
                        if k < wc {
                            // Uniform entries: cur offset == raw offset.
                            if e.width_end() > 0 {
                                end_acc += k;
                            }
                            return (
                                Cursor {
                                    leaf: idx,
                                    entry_idx: i,
                                    offset: k,
                                },
                                end_acc,
                            );
                        }
                        k -= wc;
                        end_acc += e.width_end();
                    }
                    panic!("cur position out of bounds (leaf)");
                }
            }
        }
    }

    /// Finds the boundary position `pos` in the `cur` dimension, for
    /// insertion: `0 <= pos <= total`. The returned cursor may sit at the
    /// end of an entry or of the tree.
    pub fn cursor_at_cur_pos(&self, mut pos: usize) -> Cursor {
        let mut node = self.root;
        loop {
            match node {
                NodeRef::Internal(idx) => {
                    let n = &self.internals[idx.slot()];
                    let last = n.children.len() - 1;
                    let mut chosen = last;
                    for (i, w) in n.widths.as_slice().iter().enumerate() {
                        if pos < w.cur || (i == last && pos <= w.cur) {
                            chosen = i;
                            break;
                        }
                        pos -= w.cur;
                    }
                    node = n.child(chosen);
                }
                NodeRef::Leaf(idx) => {
                    // Land inside the entry containing the pos-th visible
                    // unit; boundary positions land *after* any invisible
                    // entries (offset 0 of the next visible entry, or end of
                    // leaf on the rightmost path).
                    let l = &self.leaves[idx.slot()];
                    for (i, e) in l.entries.as_slice().iter().enumerate() {
                        let wc = e.width_cur();
                        if pos < wc {
                            return Cursor {
                                leaf: idx,
                                entry_idx: i,
                                offset: pos,
                            };
                        }
                        pos -= wc;
                    }
                    assert_eq!(pos, 0, "cur position out of bounds");
                    return Cursor {
                        leaf: idx,
                        entry_idx: l.entries.len(),
                        offset: 0,
                    };
                }
            }
        }
    }

    /// The entry under `cursor`.
    ///
    /// # Panics
    ///
    /// Panics if the cursor points past the last entry of its leaf.
    pub fn entry_at(&self, cursor: &Cursor) -> &E {
        &self.leaves[cursor.leaf.slot()].entries.as_slice()[cursor.entry_idx]
    }

    /// Advances the cursor to the start of the next entry. Returns `false`
    /// at the end of the tree.
    pub fn cursor_next_entry(&self, cursor: &mut Cursor) -> bool {
        let l = &self.leaves[cursor.leaf.slot()];
        if cursor.entry_idx + 1 < l.entries.len() {
            cursor.entry_idx += 1;
            cursor.offset = 0;
            return true;
        }
        let mut next = l.next;
        while let Some(idx) = next {
            let nl = &self.leaves[idx.slot()];
            if !nl.entries.is_empty() {
                *cursor = Cursor {
                    leaf: idx,
                    entry_idx: 0,
                    offset: 0,
                };
                return true;
            }
            next = nl.next;
        }
        false
    }

    /// Returns `true` if the cursor points at a valid entry.
    pub fn cursor_valid(&self, cursor: &Cursor) -> bool {
        cursor.entry_idx < self.leaves[cursor.leaf.slot()].entries.len()
    }

    /// Computes the global offset of the start of an entry, in both
    /// dimensions, by walking from the leaf to the root.
    pub fn offset_of(&self, leaf_idx: LeafIdx, entry_idx: usize) -> Widths {
        let mut acc = Widths::default();
        let l = &self.leaves[leaf_idx.slot()];
        for e in &l.entries.as_slice()[..entry_idx] {
            acc.add(Widths::of(e));
        }
        let mut child_raw = leaf_idx.raw();
        let mut parent = l.parent;
        while let Some(p_idx) = parent {
            let p = &self.internals[p_idx.slot()];
            for (i, &c) in p.children.as_slice().iter().enumerate() {
                if c == child_raw {
                    break;
                }
                acc.add(p.widths.as_slice()[i]);
            }
            child_raw = p_idx.raw();
            parent = p.parent;
        }
        acc
    }

    /// The entries of one leaf, in order. Used by callers that maintain an
    /// ID → leaf index and need to find a specific entry within the leaf.
    pub fn entries_in_leaf(&self, leaf: LeafIdx) -> &[E] {
        self.leaves[leaf.slot()].entries.as_slice()
    }

    /// The successor of `leaf` in the leaf chain, if any. Used by callers
    /// probing a cached cursor's neighbourhood.
    pub fn next_leaf(&self, leaf: LeafIdx) -> Option<LeafIdx> {
        self.leaves[leaf.slot()].next
    }

    /// Iterates all entries in order.
    pub fn iter(&self) -> TreeIter<'_, E, N> {
        TreeIter {
            tree: self,
            leaf: Some(self.first_leaf),
            entry_idx: 0,
        }
    }

    // ------------------------------------------------------------------
    // Mutation.
    // ------------------------------------------------------------------

    /// Adds a known width change to the cached totals on the path from
    /// `node` to the root — the O(depth) fast variant of
    /// [`ContentTree::repair_path`] for structure-preserving updates.
    fn repair_path_delta(&mut self, from: NodeRef, d: WidthsDelta) {
        if d.is_zero() {
            return;
        }
        let mut node = from;
        while let Some(parent) = self.parent_of(node) {
            let p = &mut self.internals[parent.slot()];
            let pos = p.position_of(node.raw());
            d.apply(&mut p.widths.as_mut_slice()[pos]);
            node = NodeRef::Internal(parent);
        }
    }

    /// Recomputes the cached widths on the path from `node` to the root.
    fn repair_path(&mut self, from: NodeRef) {
        let mut node = from;
        while let Some(parent) = self.parent_of(node) {
            let total = self.node_total(node);
            let p = &mut self.internals[parent.slot()];
            let pos = p.position_of(node.raw());
            p.widths.as_mut_slice()[pos] = total;
            node = NodeRef::Internal(parent);
        }
    }

    /// Splits a full leaf in half, notifying for every moved entry.
    /// Returns the new (right) leaf's index.
    fn split_leaf<NF: FnMut(&E, LeafIdx)>(
        &mut self,
        leaf_idx: LeafIdx,
        notify: &mut NF,
    ) -> LeafIdx {
        let new_idx = self.alloc_leaf();
        let from = leaf_idx.slot();
        let keep = self.leaves[from].entries.len() / 2;
        let moved = self.leaves[from].entries.split_off_tail(keep);
        let next = self.leaves[from].next;
        let parent = self.leaves[from].parent;
        self.leaves[from].next = Some(new_idx);
        {
            let nl = &mut self.leaves[new_idx.slot()];
            nl.entries = moved;
            nl.prev = Some(leaf_idx);
            nl.next = next;
            // Fixed up by insert_child_after if the parent splits.
            nl.parent = parent;
        }
        if let Some(nx) = next {
            self.leaves[nx.slot()].prev = Some(new_idx);
        }
        for e in self.leaves[new_idx.slot()].entries.as_slice() {
            notify(e, new_idx);
        }
        self.insert_child_after(NodeRef::Leaf(leaf_idx), NodeRef::Leaf(new_idx));
        new_idx
    }

    /// Inserts `new_child` directly after `after` in `after`'s parent
    /// (creating a new root when `after` is the root), splitting the parent
    /// first if it is full. Fixes the cached widths of both children.
    fn insert_child_after(&mut self, after: NodeRef, new_child: NodeRef) {
        let w_after = self.node_total(after);
        let w_new = self.node_total(new_child);
        let Some(mut parent) = self.parent_of(after) else {
            // `after` was the root; grow the tree.
            let new_root = self.alloc_internal();
            {
                let n = &mut self.internals[new_root.slot()];
                n.leaf_children = matches!(after, NodeRef::Leaf(_));
                n.children.push(after.raw()); // ALLOC: InlineVec, fixed inline capacity, no heap
                n.children.push(new_child.raw()); // ALLOC: InlineVec, no heap
                n.widths.push(w_after); // ALLOC: InlineVec, no heap
                n.widths.push(w_new); // ALLOC: InlineVec, no heap
            }
            self.set_parent(after, Some(new_root));
            self.set_parent(new_child, Some(new_root));
            self.root = NodeRef::Internal(new_root);
            return;
        };
        if self.internals[parent.slot()].children.len() == N {
            // Split before inserting; `after` may move to the new sibling.
            self.split_internal(parent);
            parent = self.parent_of(after).expect("split lost child");
        }
        let p = &mut self.internals[parent.slot()];
        let pos = p.position_of(after.raw());
        p.widths.as_mut_slice()[pos] = w_after;
        p.children.insert(pos + 1, new_child.raw());
        p.widths.insert(pos + 1, w_new);
        self.set_parent(new_child, Some(parent));
    }

    /// Splits a full internal node in half.
    fn split_internal(&mut self, idx: InternalIdx) {
        let new_idx = self.alloc_internal();
        let from = idx.slot();
        let keep = self.internals[from].children.len() / 2;
        let moved_children = self.internals[from].children.split_off_tail(keep);
        let moved_widths = self.internals[from].widths.split_off_tail(keep);
        let leaf_children = self.internals[from].leaf_children;
        {
            let n = &mut self.internals[new_idx.slot()];
            n.leaf_children = leaf_children;
            n.children = moved_children;
            n.widths = moved_widths;
        }
        for i in 0..self.internals[new_idx.slot()].children.len() {
            let child = self.internals[new_idx.slot()].child(i);
            self.set_parent(child, Some(new_idx));
        }
        self.insert_child_after(NodeRef::Internal(idx), NodeRef::Internal(new_idx));
    }

    /// Ensures the leaf holding entry position `idx` has room for one more
    /// entry, splitting it if full. Returns the (possibly moved) location.
    fn make_room<NF: FnMut(&E, LeafIdx)>(
        &mut self,
        leaf_idx: LeafIdx,
        idx: usize,
        notify: &mut NF,
        split_flag: &mut bool,
    ) -> (LeafIdx, usize) {
        if self.leaves[leaf_idx.slot()].entries.len() < N {
            return (leaf_idx, idx);
        }
        *split_flag = true;
        let new_leaf = self.split_leaf(leaf_idx, notify);
        let keep = self.leaves[leaf_idx.slot()].entries.len();
        if idx >= keep {
            (new_leaf, idx - keep)
        } else {
            (leaf_idx, idx)
        }
    }

    /// Inserts entry `e` at the cursor position, keeping entries RLE-merged
    /// when possible. Calls `notify(entry, leaf)` for the inserted entry and
    /// for every entry relocated by leaf splits.
    ///
    /// Returns a cursor pointing at the start of the inserted content (which
    /// may be in the middle of a merged entry).
    pub fn insert_at<NF: FnMut(&E, LeafIdx)>(
        &mut self,
        cursor: Cursor,
        e: E,
        notify: &mut NF,
    ) -> Cursor {
        let leaf_idx = cursor.leaf;
        let mut entry_idx = cursor.entry_idx;
        let mut offset = cursor.offset;

        // Normalise an end-of-entry offset to the next boundary.
        {
            let l = &self.leaves[leaf_idx.slot()];
            if entry_idx < l.entries.len() && offset == l.entries.as_slice()[entry_idx].len() {
                entry_idx += 1;
                offset = 0;
            }
        }

        // Whatever the insertion path, ancestor totals grow by exactly the
        // new entry's widths (boundary splits move units, net zero).
        let net = WidthsDelta::gain(Widths::of(&e));
        let (leaf_idx, entry_idx) = if offset == 0 {
            // Try appending to the previous entry in this leaf.
            if entry_idx > 0 {
                let l = &mut self.leaves[leaf_idx.slot()];
                let prev = &mut l.entries.as_mut_slice()[entry_idx - 1];
                if prev.can_append(&e) {
                    let at = prev.len();
                    prev.append(e.clone()); // ALLOC: RLE append extends the entry in place, no heap
                    notify(&e, leaf_idx);
                    self.repair_path_delta(NodeRef::Leaf(leaf_idx), net);
                    return Cursor {
                        leaf: leaf_idx,
                        entry_idx: entry_idx - 1,
                        offset: at,
                    };
                }
            }
            self.insert_entries_at(leaf_idx, entry_idx, e, None, Some(net), notify)
        } else {
            // Split the containing entry and insert in between.
            let tail =
                self.leaves[leaf_idx.slot()].entries.as_mut_slice()[entry_idx].truncate(offset);
            self.insert_entries_at(leaf_idx, entry_idx + 1, e, Some(tail), Some(net), notify)
        };
        Cursor {
            leaf: leaf_idx,
            entry_idx,
            offset: 0,
        }
    }

    /// Inserts `e0` (and `e1` directly after it, when given) at `entry_idx`
    /// of `leaf_idx`, splitting the leaf first if it lacks room for both,
    /// repairing widths, and notifying for the inserted entries and any the
    /// split relocated. Returns `e0`'s location after insertion.
    ///
    /// `net` is the caller-known change to the subtree total (new material
    /// only — pieces split off existing entries cancel out); when given
    /// and no split occurs, the repair is O(depth) instead of
    /// O(depth × fanout). `None` forces a full recompute.
    fn insert_entries_at<NF: FnMut(&E, LeafIdx)>(
        &mut self,
        leaf_idx: LeafIdx,
        entry_idx: usize,
        e0: E,
        e1: Option<E>,
        net: Option<WidthsDelta>,
        notify: &mut NF,
    ) -> (LeafIdx, usize) {
        let needed = 1 + e1.is_some() as usize;
        let mut leaf_idx = leaf_idx;
        let mut entry_idx = entry_idx;
        let mut split = false;
        if self.leaves[leaf_idx.slot()].entries.len() + needed > N {
            // One split always frees enough room: each half keeps at most
            // N - N/2 entries and needed <= 2 <= N/2 for N >= 4.
            let new_leaf = self.split_leaf(leaf_idx, notify);
            split = true;
            let keep = self.leaves[leaf_idx.slot()].entries.len();
            if entry_idx >= keep {
                leaf_idx = new_leaf;
                entry_idx -= keep;
            }
        }
        notify(&e0, leaf_idx);
        if let Some(ref e1v) = e1 {
            notify(e1v, leaf_idx);
        }
        {
            let entries = &mut self.leaves[leaf_idx.slot()].entries;
            entries.insert(entry_idx, e0);
            if let Some(e1) = e1 {
                entries.insert(entry_idx + 1, e1);
            }
        }
        if split {
            // The split rewrote ancestor slots from (then-incomplete)
            // totals; recompute both changed root paths.
            self.repair_path(NodeRef::Leaf(leaf_idx));
        } else {
            match net {
                Some(d) => self.repair_path_delta(NodeRef::Leaf(leaf_idx), d),
                None => self.repair_path(NodeRef::Leaf(leaf_idx)),
            }
        }
        (leaf_idx, entry_idx)
    }

    /// Applies an arbitrary in-place edit to the entry at
    /// (`leaf`, `entry_idx`) and repairs ancestor widths by delta
    /// (O(depth)), without splitting or relocating anything.
    ///
    /// This is the zero-allocation edit primitive for entry types that can
    /// grow or shrink in place (e.g. a rope chunk absorbing an insertion
    /// into its buffer). The edit may change the entry's length and widths
    /// arbitrarily but must leave it non-empty.
    ///
    /// # Panics
    ///
    /// Panics if the slot does not hold an entry.
    pub fn update_entry<F: FnOnce(&mut E)>(&mut self, leaf: LeafIdx, entry_idx: usize, f: F) {
        let (before, after) = {
            let e = &mut self.leaves[leaf.slot()].entries.as_mut_slice()[entry_idx];
            let before = Widths::of(e);
            f(e);
            debug_assert!(!e.is_empty(), "update_entry left an empty entry");
            (before, Widths::of(e))
        };
        self.repair_path_delta(NodeRef::Leaf(leaf), WidthsDelta::change(before, after));
    }

    /// Mutates up to `max_len` units of the entry under `cursor`, starting
    /// at the cursor offset, splitting the entry as needed so the mutation
    /// applies exactly to that sub-range.
    ///
    /// Returns `(mutated_len, leaf, entry_idx)` locating the mutated piece.
    /// `notify` fires for entries relocated by splits (including pieces of
    /// the split entry itself).
    pub fn mutate_entry<F, NF>(
        &mut self,
        cursor: &Cursor,
        max_len: usize,
        mutate: F,
        notify: &mut NF,
    ) -> (usize, LeafIdx, usize)
    where
        F: FnOnce(&mut E),
        NF: FnMut(&E, LeafIdx),
    {
        let leaf_idx = cursor.leaf;
        let entry_idx = cursor.entry_idx;
        let offset = cursor.offset;
        let entry_len = self.leaves[leaf_idx.slot()].entries.as_slice()[entry_idx].len();
        assert!(offset < entry_len, "cursor must point inside the entry");
        let len = max_len.min(entry_len - offset);
        assert!(len > 0);

        if offset > 0 {
            // Split off the piece at the cursor; it becomes e0 of the
            // insertion (with the untouched post piece, if any, as e1).
            let mut piece =
                self.leaves[leaf_idx.slot()].entries.as_mut_slice()[entry_idx].truncate(offset);
            let post = if len < piece.len() {
                Some(piece.truncate(len))
            } else {
                None
            };
            let before = Widths::of(&piece);
            mutate(&mut piece);
            let net = WidthsDelta::change(before, Widths::of(&piece));
            let (leaf_idx, entry_idx) =
                self.insert_entries_at(leaf_idx, entry_idx + 1, piece, post, Some(net), notify);
            (len, leaf_idx, entry_idx)
        } else {
            // Mutate the entry head in place; the untouched tail (if any)
            // splits off and is re-inserted after it.
            let post = {
                let e = &mut self.leaves[leaf_idx.slot()].entries.as_mut_slice()[entry_idx];
                if len < entry_len {
                    Some(e.truncate(len))
                } else {
                    None
                }
            };
            let net = {
                let e = &mut self.leaves[leaf_idx.slot()].entries.as_mut_slice()[entry_idx];
                let before = Widths::of(e);
                mutate(e);
                WidthsDelta::change(before, Widths::of(e))
            };
            match post {
                None => {
                    self.repair_path_delta(NodeRef::Leaf(leaf_idx), net);
                    (len, leaf_idx, entry_idx)
                }
                Some(post) => {
                    let (post_leaf, post_idx) = self.insert_entries_at(
                        leaf_idx,
                        entry_idx + 1,
                        post,
                        None,
                        Some(net),
                        notify,
                    );
                    // The mutated entry sits directly before the post piece
                    // (possibly at the end of the previous leaf if the
                    // insertion split moved only the post piece right).
                    if post_idx > 0 {
                        (len, post_leaf, post_idx - 1)
                    } else {
                        let prev = self.leaves[post_leaf.slot()]
                            .prev
                            .expect("mutated entry lost");
                        (len, prev, self.leaves[prev.slot()].entries.len() - 1)
                    }
                }
            }
        }
    }

    /// Mutates a run of consecutive entries starting under `cursor` in one
    /// pass, with a single width repair at the end — the batched
    /// counterpart of repeated [`ContentTree::mutate_entry`] calls.
    ///
    /// For every entry from the cursor onwards (bounded by the entries of
    /// the cursor's leaf — including any leaves the batch's own splits
    /// spread them across), `policy(&entry, offset)` decides the
    /// [`RunStep`]: mutate a prefix of the entry's remaining units
    /// (splitting boundary pieces as needed), skip it, or stop. `offset` is
    /// nonzero only for the first entry (the cursor's offset). The policy
    /// observes each piece *before* mutation and is called exactly once per
    /// **piece**: when `Mutate(n)` covers only a prefix, the split-off
    /// untouched remainder is re-presented to the policy as its own piece —
    /// stateful policies (e.g. recording the sub-ranges chosen) must count
    /// pieces, not original entries. `mutate` is applied to each chosen
    /// piece; `notify` fires for entries relocated by splits.
    ///
    /// Cached widths are stale while the batch runs and repaired once at
    /// the end, so `policy`/`mutate` must not re-enter the tree.
    pub fn mutate_run<P, F, NF>(
        &mut self,
        cursor: &Cursor,
        mut policy: P,
        mutate: F,
        notify: &mut NF,
    ) where
        P: FnMut(&E, usize) -> RunStep,
        F: Fn(&mut E),
        NF: FnMut(&E, LeafIdx),
    {
        let start_leaf = cursor.leaf;
        // The original successor bounds the batch: leaves created by the
        // batch's own splits all land strictly before it in the chain.
        let stop = self.leaves[start_leaf.slot()].next;
        let mut leaf_idx = start_leaf;
        let mut idx = cursor.entry_idx;
        let mut off = cursor.offset;
        let mut net = WidthsDelta::default();
        let mut split_occurred = false;
        'run: loop {
            while idx >= self.leaves[leaf_idx.slot()].entries.len() {
                match self.leaves[leaf_idx.slot()].next {
                    Some(next) if Some(next) != stop => {
                        leaf_idx = next;
                        idx = 0;
                        off = 0;
                    }
                    _ => break 'run,
                }
            }
            let entry_len = self.leaves[leaf_idx.slot()].entries.as_slice()[idx].len();
            if off >= entry_len {
                idx += 1;
                off = 0;
                continue;
            }
            match policy(&self.leaves[leaf_idx.slot()].entries.as_slice()[idx], off) {
                RunStep::Stop => break,
                RunStep::Skip => {
                    idx += 1;
                    off = 0;
                }
                RunStep::Mutate(n) => {
                    assert!(n > 0 && off + n <= entry_len, "bad RunStep::Mutate length");
                    if off > 0 {
                        // Split off the untouched head; the piece to mutate
                        // becomes the entry at idx + 1.
                        (leaf_idx, idx) =
                            self.make_room(leaf_idx, idx, notify, &mut split_occurred);
                        let tail =
                            self.leaves[leaf_idx.slot()].entries.as_mut_slice()[idx].truncate(off);
                        self.leaves[leaf_idx.slot()].entries.insert(idx + 1, tail);
                        idx += 1;
                        off = 0;
                    }
                    if n < self.leaves[leaf_idx.slot()].entries.as_slice()[idx].len() {
                        // Split off the untouched tail.
                        (leaf_idx, idx) =
                            self.make_room(leaf_idx, idx, notify, &mut split_occurred);
                        let tail =
                            self.leaves[leaf_idx.slot()].entries.as_mut_slice()[idx].truncate(n);
                        self.leaves[leaf_idx.slot()].entries.insert(idx + 1, tail);
                    }
                    let piece = &mut self.leaves[leaf_idx.slot()].entries.as_mut_slice()[idx];
                    let before = Widths::of(piece);
                    mutate(piece);
                    net.accumulate(WidthsDelta::change(before, Widths::of(piece)));
                    idx += 1;
                }
            }
        }
        // Repair widths: incrementally (O(depth)) when the structure is
        // unchanged; otherwise fully, for every leaf of the region — splits
        // refresh the immediate parent slots mid-batch, but from totals
        // that were stale at that point.
        if !split_occurred {
            self.repair_path_delta(NodeRef::Leaf(start_leaf), net);
        } else {
            let mut cur = Some(start_leaf);
            while cur != stop {
                let l = cur.expect("mutate_run region lost its stop leaf");
                self.repair_path(NodeRef::Leaf(l));
                cur = self.leaves[l.slot()].next;
            }
        }
    }

    /// Deletes `del_len` units starting at `cur`-dimension position `pos`.
    ///
    /// Only supported when every entry is fully visible in the `cur`
    /// dimension (single-dimension usage, e.g. a rope) — deletion positions
    /// are interpreted in raw units. Leaves emptied by the deletion are
    /// unlinked and returned to the free list.
    pub fn delete_cur_range(&mut self, pos: usize, mut del_len: usize) {
        let mut cursor = self.cursor_at_cur_pos(pos);
        let mut no_notify = |_: &E, _: LeafIdx| {};
        while del_len > 0 {
            let l = &self.leaves[cursor.leaf.slot()];
            if cursor.entry_idx >= l.entries.len() {
                let next = l.next.expect("delete past end of tree");
                self.finish_leaf_after_delete(cursor.leaf);
                cursor = Cursor {
                    leaf: next,
                    entry_idx: 0,
                    offset: 0,
                };
                continue;
            }
            let e_len = l.entries.as_slice()[cursor.entry_idx].len();
            if cursor.offset == e_len {
                cursor.entry_idx += 1;
                cursor.offset = 0;
                continue;
            }
            if cursor.offset == 0 && del_len >= e_len {
                self.leaves[cursor.leaf.slot()]
                    .entries
                    .remove(cursor.entry_idx);
                del_len -= e_len;
            } else if cursor.offset == 0 {
                // Remove a prefix of the entry.
                self.leaves[cursor.leaf.slot()].entries.as_mut_slice()[cursor.entry_idx]
                    .truncate_keeping_right(del_len);
                del_len = 0;
            } else if cursor.offset + del_len >= e_len {
                // Remove a suffix of the entry.
                let removed = e_len - cursor.offset;
                self.leaves[cursor.leaf.slot()].entries.as_mut_slice()[cursor.entry_idx]
                    .truncate(cursor.offset);
                del_len -= removed;
                cursor.entry_idx += 1;
                cursor.offset = 0;
            } else {
                // Remove from the middle: split and drop the middle piece.
                let tail = {
                    let e = &mut self.leaves[cursor.leaf.slot()].entries.as_mut_slice()
                        [cursor.entry_idx];
                    let mut tail = e.truncate(cursor.offset);
                    tail.truncate_keeping_right(del_len);
                    tail
                };
                self.insert_entries_at(
                    cursor.leaf,
                    cursor.entry_idx + 1,
                    tail,
                    None,
                    None,
                    &mut no_notify,
                );
                return;
            }
        }
        self.finish_leaf_after_delete(cursor.leaf);
    }

    /// After a deletion pass over `leaf`: free it if it emptied, otherwise
    /// recompute its root path.
    fn finish_leaf_after_delete(&mut self, leaf: LeafIdx) {
        if self.leaves[leaf.slot()].entries.is_empty() {
            self.free_empty_leaf(leaf);
        } else {
            self.repair_path(NodeRef::Leaf(leaf));
        }
    }

    /// Unlinks an emptied leaf from the chain and its parent, freeing empty
    /// ancestors recursively. A lone root leaf stays (the empty tree).
    fn free_empty_leaf(&mut self, leaf_idx: LeafIdx) {
        debug_assert!(self.leaves[leaf_idx.slot()].entries.is_empty());
        let l = &self.leaves[leaf_idx.slot()];
        let (parent, prev, next) = (l.parent, l.prev, l.next);
        let Some(parent) = parent else {
            return;
        };
        if let Some(p) = prev {
            self.leaves[p.slot()].next = next;
        }
        if let Some(n) = next {
            self.leaves[n.slot()].prev = prev;
        }
        if self.first_leaf == leaf_idx {
            if let Some(n) = next {
                self.first_leaf = n;
            }
            // else: the whole tree is emptying; remove_child installs a
            // fresh root leaf (and first_leaf) below.
        }
        let raw = leaf_idx.raw();
        self.release_leaf(leaf_idx);
        self.remove_child(parent, raw);
    }

    /// Removes a freed child from `node`, freeing `node` itself (and so on
    /// up) if it empties; otherwise repairs the ancestor widths.
    fn remove_child(&mut self, node: InternalIdx, child_raw: u32) {
        let pos = self.internals[node.slot()].position_of(child_raw);
        {
            let n = &mut self.internals[node.slot()];
            n.children.remove(pos);
            n.widths.remove(pos);
        }
        if self.internals[node.slot()].children.is_empty() {
            let gp = self.internals[node.slot()].parent;
            let raw = node.raw();
            self.release_internal(node);
            match gp {
                Some(gp) => self.remove_child(gp, raw),
                None => {
                    // The whole tree emptied; reinstall the empty state.
                    let root = self.alloc_leaf();
                    self.root = NodeRef::Leaf(root);
                    self.first_leaf = root;
                }
            }
        } else {
            self.repair_path(NodeRef::Internal(node));
        }
    }

    // ------------------------------------------------------------------
    // Validation (used by tests).
    // ------------------------------------------------------------------

    /// Checks every tree invariant, panicking on violation. Test-only; slow.
    pub fn check(&self) {
        // Leaf chain visits every live leaf exactly once, left to right,
        // with symmetric prev pointers.
        let mut chain = Vec::new();
        let mut leaf = Some(self.first_leaf);
        let mut prev: Option<LeafIdx> = None;
        while let Some(idx) = leaf {
            assert_eq!(self.leaves[idx.slot()].prev, prev, "broken prev at {idx:?}");
            chain.push(idx);
            prev = Some(idx);
            leaf = self.leaves[idx.slot()].next;
        }
        let mut dfs_leaves = Vec::new();
        let mut internal_count = 0usize;
        self.collect_leaves(self.root, &mut dfs_leaves, &mut internal_count);
        assert_eq!(chain, dfs_leaves, "leaf chain does not match tree order");

        // Slab accounting: every slot is either reachable or on a free list.
        assert_eq!(
            chain.len() + self.free_leaves.len(),
            self.leaves.len(),
            "leaked leaf slots"
        );
        assert_eq!(
            internal_count + self.free_internals.len(),
            self.internals.len(),
            "leaked internal slots"
        );

        self.check_node(self.root, None);
    }

    fn collect_leaves(&self, node: NodeRef, out: &mut Vec<LeafIdx>, internal_count: &mut usize) {
        match node {
            NodeRef::Internal(idx) => {
                *internal_count += 1;
                let n = &self.internals[idx.slot()];
                for i in 0..n.children.len() {
                    self.collect_leaves(n.child(i), out, internal_count);
                }
            }
            NodeRef::Leaf(idx) => out.push(idx),
        }
    }

    fn check_node(&self, node: NodeRef, expected_parent: Option<InternalIdx>) -> Widths {
        match node {
            NodeRef::Internal(idx) => {
                let n = &self.internals[idx.slot()];
                assert_eq!(n.parent, expected_parent, "bad parent at {idx:?}");
                assert!(!n.children.is_empty());
                assert!(n.children.len() <= N);
                assert_eq!(n.children.len(), n.widths.len());
                let mut total = Widths::default();
                for i in 0..n.children.len() {
                    let w = self.check_node(n.child(i), Some(idx));
                    assert_eq!(
                        w,
                        n.widths.as_slice()[i],
                        "stale cached width at {idx:?}[{i}]"
                    );
                    total.add(w);
                }
                total
            }
            NodeRef::Leaf(idx) => {
                let l = &self.leaves[idx.slot()];
                assert_eq!(l.parent, expected_parent, "bad parent at leaf {idx:?}");
                assert!(l.entries.len() <= N);
                assert!(
                    !l.entries.is_empty() || self.root == node,
                    "empty non-root leaf {idx:?}"
                );
                let mut total = Widths::default();
                for e in l.entries.as_slice() {
                    assert!(!e.is_empty(), "empty entry stored");
                    let wc = e.width_cur();
                    let we = e.width_end();
                    assert!(wc == 0 || wc == e.len(), "non-uniform cur width");
                    assert!(we == 0 || we == e.len(), "non-uniform end width");
                    total.add(Widths::of(e));
                }
                total
            }
        }
    }
}

/// Iterator over the tree's entries in order. See [`ContentTree::iter`].
pub struct TreeIter<'a, E: TreeEntry, const N: usize = DEFAULT_FANOUT> {
    tree: &'a ContentTree<E, N>,
    leaf: Option<LeafIdx>,
    entry_idx: usize,
}

impl<'a, E: TreeEntry, const N: usize> Iterator for TreeIter<'a, E, N> {
    type Item = &'a E;

    fn next(&mut self) -> Option<&'a E> {
        loop {
            let idx = self.leaf?;
            let l = &self.tree.leaves[idx.slot()];
            if self.entry_idx < l.entries.len() {
                let e = &l.entries.as_slice()[self.entry_idx];
                self.entry_idx += 1;
                return Some(e);
            }
            self.leaf = l.next;
            self.entry_idx = 0;
        }
    }
}
