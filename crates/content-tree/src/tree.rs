//! The B-tree implementation. See the crate docs for the design.

use crate::TreeEntry;

/// Index of a node in the tree's arena.
pub type NodeIdx = u32;

/// Sentinel for "no node" (absent parent / end of leaf chain).
pub const NODE_IDX_NONE: NodeIdx = u32::MAX;

/// Default fanout of a [`ContentTree`]: maximum children per internal node
/// and maximum entries per leaf. Chosen by the `walker_hot` fanout sweep in
/// `crates/bench/benches/walker_hot.rs` — re-run it when the entry type or
/// workload changes materially.
pub const DEFAULT_FANOUT: usize = 16;

/// Subtree widths in the two tracked dimensions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Widths {
    /// Total width in the `cur` (primary / prepare) dimension.
    pub cur: usize,
    /// Total width in the `end` (secondary / effect) dimension.
    pub end: usize,
    /// Total raw units (every unit counts, visible or not).
    pub raw: usize,
}

impl Widths {
    fn of<E: TreeEntry>(e: &E) -> Self {
        Widths {
            cur: e.width_cur(),
            end: e.width_end(),
            raw: e.len(),
        }
    }

    fn add(&mut self, other: Widths) {
        self.cur += other.cur;
        self.end += other.end;
        self.raw += other.raw;
    }
}

/// A signed change to cached [`Widths`], for the O(depth) incremental
/// repair path (mutations and RLE appends change ancestor totals by a
/// known amount; recomputing node totals per level is O(depth × fanout)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct WidthsDelta {
    cur: isize,
    end: isize,
    raw: isize,
}

impl WidthsDelta {
    /// The delta of adding `w` from nothing.
    fn gain(w: Widths) -> Self {
        WidthsDelta {
            cur: w.cur as isize,
            end: w.end as isize,
            raw: w.raw as isize,
        }
    }

    /// The delta taking `before` to `after`.
    fn change(before: Widths, after: Widths) -> Self {
        WidthsDelta {
            cur: after.cur as isize - before.cur as isize,
            end: after.end as isize - before.end as isize,
            raw: after.raw as isize - before.raw as isize,
        }
    }

    fn accumulate(&mut self, other: WidthsDelta) {
        self.cur += other.cur;
        self.end += other.end;
        self.raw += other.raw;
    }

    fn is_zero(&self) -> bool {
        *self == WidthsDelta::default()
    }

    fn apply(&self, w: &mut Widths) {
        w.cur = (w.cur as isize + self.cur) as usize;
        w.end = (w.end as isize + self.end) as usize;
        w.raw = (w.raw as isize + self.raw) as usize;
    }
}

/// A position in the tree: just before the `offset`-th unit of the
/// `entry_idx`-th entry of leaf `leaf`.
///
/// Cursors are plain value types; any structural tree change invalidates
/// them (re-locate afterwards).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cursor {
    /// The leaf node holding the position.
    pub leaf: NodeIdx,
    /// Entry index within the leaf. May equal the number of entries
    /// (end-of-leaf position).
    pub entry_idx: usize,
    /// Raw-unit offset into the entry. May equal the entry length
    /// (boundary position).
    pub offset: usize,
}

#[derive(Debug, Clone)]
struct Internal {
    parent: NodeIdx,
    children: Vec<NodeIdx>,
    /// Cached total widths of each child's subtree, aligned with `children`.
    widths: Vec<Widths>,
}

#[derive(Debug, Clone)]
struct Leaf<E> {
    parent: NodeIdx,
    entries: Vec<E>,
    /// Next leaf in sequence order, or [`NODE_IDX_NONE`].
    next: NodeIdx,
}

#[derive(Debug, Clone)]
enum Node<E> {
    Internal(Internal),
    Leaf(Leaf<E>),
}

/// The order-statistic B-tree. See the crate documentation.
///
/// `N` is the fanout: the maximum number of children of an internal node
/// and of entries in a leaf. Larger fanouts mean shallower trees (cheaper
/// descents and width repairs) but more linear scanning within nodes; the
/// sweet spot depends on the entry type and workload, so it is a
/// compile-time parameter swept by the `walker_hot` benchmark.
#[derive(Debug, Clone)]
pub struct ContentTree<E: TreeEntry, const N: usize = DEFAULT_FANOUT> {
    nodes: Vec<Node<E>>,
    root: NodeIdx,
    first_leaf: NodeIdx,
}

/// One step of a [`ContentTree::mutate_run`] batch, decided per entry by
/// the caller's policy closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStep {
    /// Mutate the next `n` raw units of the current entry (counting from
    /// the policy's offset), splitting the entry as needed. `n` must be
    /// `> 0` and not exceed the units remaining in the entry.
    Mutate(usize),
    /// Leave the entry untouched and move to the next one in the leaf.
    Skip,
    /// End the batch.
    Stop,
}

impl<E: TreeEntry, const N: usize> Default for ContentTree<E, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: TreeEntry, const N: usize> ContentTree<E, N> {
    /// Creates an empty tree (a single empty leaf).
    pub fn new() -> Self {
        ContentTree {
            nodes: vec![Node::Leaf(Leaf {
                parent: NODE_IDX_NONE,
                entries: Vec::new(),
                next: NODE_IDX_NONE,
            })],
            root: 0,
            first_leaf: 0,
        }
    }

    /// Removes all entries, releasing the arena.
    pub fn clear(&mut self) {
        *self = Self::new();
    }

    fn leaf(&self, idx: NodeIdx) -> &Leaf<E> {
        match &self.nodes[idx as usize] {
            Node::Leaf(l) => l,
            Node::Internal(_) => panic!("expected leaf at {idx}"),
        }
    }

    fn leaf_mut(&mut self, idx: NodeIdx) -> &mut Leaf<E> {
        match &mut self.nodes[idx as usize] {
            Node::Leaf(l) => l,
            Node::Internal(_) => panic!("expected leaf at {idx}"),
        }
    }

    fn internal(&self, idx: NodeIdx) -> &Internal {
        match &self.nodes[idx as usize] {
            Node::Internal(n) => n,
            Node::Leaf(_) => panic!("expected internal node at {idx}"),
        }
    }

    fn internal_mut(&mut self, idx: NodeIdx) -> &mut Internal {
        match &mut self.nodes[idx as usize] {
            Node::Internal(n) => n,
            Node::Leaf(_) => panic!("expected internal node at {idx}"),
        }
    }

    fn parent_of(&self, idx: NodeIdx) -> NodeIdx {
        match &self.nodes[idx as usize] {
            Node::Internal(n) => n.parent,
            Node::Leaf(l) => l.parent,
        }
    }

    /// The total widths of the whole tree.
    pub fn total_widths(&self) -> Widths {
        self.node_total(self.root)
    }

    fn node_total(&self, idx: NodeIdx) -> Widths {
        let mut total = Widths::default();
        match &self.nodes[idx as usize] {
            Node::Internal(n) => {
                for w in &n.widths {
                    total.add(*w);
                }
            }
            Node::Leaf(l) => {
                for e in &l.entries {
                    total.add(Widths::of(e));
                }
            }
        }
        total
    }

    /// The number of entries stored (O(number of leaves)).
    pub fn num_entries(&self) -> usize {
        let mut leaf = self.first_leaf;
        let mut n = 0;
        while leaf != NODE_IDX_NONE {
            let l = self.leaf(leaf);
            n += l.entries.len();
            leaf = l.next;
        }
        n
    }

    /// A cursor at the very start of the tree.
    pub fn cursor_at_start(&self) -> Cursor {
        Cursor {
            leaf: self.first_leaf,
            entry_idx: 0,
            offset: 0,
        }
    }

    /// Finds the `k`-th visible unit in the `cur` dimension.
    ///
    /// Returns the cursor pointing at that unit, along with the unit's
    /// offset in the `end` dimension (the number of `end`-visible units
    /// strictly before it).
    ///
    /// # Panics
    ///
    /// Panics if `k >= total cur width`.
    pub fn cursor_at_cur_unit(&self, mut k: usize) -> (Cursor, usize) {
        let mut end_acc = 0usize;
        let mut idx = self.root;
        loop {
            match &self.nodes[idx as usize] {
                Node::Internal(n) => {
                    let mut found = false;
                    for (i, &child) in n.children.iter().enumerate() {
                        let w = n.widths[i];
                        if k < w.cur {
                            idx = child;
                            found = true;
                            break;
                        }
                        k -= w.cur;
                        end_acc += w.end;
                    }
                    assert!(found, "cur position out of bounds");
                }
                Node::Leaf(l) => {
                    for (i, e) in l.entries.iter().enumerate() {
                        let wc = e.width_cur();
                        if k < wc {
                            // Uniform entries: cur offset == raw offset.
                            if e.width_end() > 0 {
                                end_acc += k;
                            }
                            return (
                                Cursor {
                                    leaf: idx,
                                    entry_idx: i,
                                    offset: k,
                                },
                                end_acc,
                            );
                        }
                        k -= wc;
                        end_acc += e.width_end();
                    }
                    panic!("cur position out of bounds (leaf)");
                }
            }
        }
    }

    /// Finds the boundary position `pos` in the `cur` dimension, for
    /// insertion: `0 <= pos <= total`. The returned cursor may sit at the
    /// end of an entry or of the tree.
    pub fn cursor_at_cur_pos(&self, mut pos: usize) -> Cursor {
        let mut idx = self.root;
        loop {
            match &self.nodes[idx as usize] {
                Node::Internal(n) => {
                    let last = n.children.len() - 1;
                    let mut chosen = last;
                    for (i, w) in n.widths.iter().enumerate() {
                        if pos < w.cur || (i == last && pos <= w.cur) {
                            chosen = i;
                            break;
                        }
                        pos -= w.cur;
                    }
                    idx = n.children[chosen];
                }
                Node::Leaf(l) => {
                    // Land inside the entry containing the pos-th visible
                    // unit; boundary positions land *after* any invisible
                    // entries (offset 0 of the next visible entry, or end of
                    // leaf on the rightmost path).
                    for (i, e) in l.entries.iter().enumerate() {
                        let wc = e.width_cur();
                        if pos < wc {
                            return Cursor {
                                leaf: idx,
                                entry_idx: i,
                                offset: pos,
                            };
                        }
                        pos -= wc;
                    }
                    assert_eq!(pos, 0, "cur position out of bounds");
                    return Cursor {
                        leaf: idx,
                        entry_idx: l.entries.len(),
                        offset: 0,
                    };
                }
            }
        }
    }

    /// The entry under `cursor`.
    ///
    /// # Panics
    ///
    /// Panics if the cursor points past the last entry of its leaf.
    pub fn entry_at(&self, cursor: &Cursor) -> &E {
        &self.leaf(cursor.leaf).entries[cursor.entry_idx]
    }

    /// Advances the cursor to the start of the next entry. Returns `false`
    /// at the end of the tree.
    pub fn cursor_next_entry(&self, cursor: &mut Cursor) -> bool {
        let l = self.leaf(cursor.leaf);
        if cursor.entry_idx + 1 < l.entries.len() {
            cursor.entry_idx += 1;
            cursor.offset = 0;
            return true;
        }
        let mut next = l.next;
        // Skip (rare) empty leaves left behind by deletions.
        while next != NODE_IDX_NONE {
            let nl = self.leaf(next);
            if !nl.entries.is_empty() {
                *cursor = Cursor {
                    leaf: next,
                    entry_idx: 0,
                    offset: 0,
                };
                return true;
            }
            next = nl.next;
        }
        false
    }

    /// Returns `true` if the cursor points at a valid entry.
    pub fn cursor_valid(&self, cursor: &Cursor) -> bool {
        cursor.entry_idx < self.leaf(cursor.leaf).entries.len()
    }

    /// Computes the global offset of the start of an entry, in both
    /// dimensions, by walking from the leaf to the root.
    pub fn offset_of(&self, leaf_idx: NodeIdx, entry_idx: usize) -> Widths {
        let mut acc = Widths::default();
        let l = self.leaf(leaf_idx);
        for e in &l.entries[..entry_idx] {
            acc.add(Widths::of(e));
        }
        let mut child = leaf_idx;
        let mut parent = l.parent;
        while parent != NODE_IDX_NONE {
            let p = self.internal(parent);
            for (i, &c) in p.children.iter().enumerate() {
                if c == child {
                    break;
                }
                acc.add(p.widths[i]);
            }
            child = parent;
            parent = p.parent;
        }
        acc
    }

    /// The entries of one leaf, in order. Used by callers that maintain an
    /// ID → leaf index and need to find a specific entry within the leaf.
    pub fn entries_in_leaf(&self, leaf: NodeIdx) -> &[E] {
        &self.leaf(leaf).entries
    }

    /// The successor of `leaf` in the leaf chain, or [`NODE_IDX_NONE`].
    /// Used by callers probing a cached cursor's neighbourhood.
    pub fn next_leaf(&self, leaf: NodeIdx) -> NodeIdx {
        self.leaf(leaf).next
    }

    /// Iterates all entries in order.
    pub fn iter(&self) -> TreeIter<'_, E, N> {
        TreeIter {
            tree: self,
            leaf: self.first_leaf,
            entry_idx: 0,
        }
    }

    // ------------------------------------------------------------------
    // Mutation.
    // ------------------------------------------------------------------

    /// Adds a known width change to the cached totals on the path from
    /// `node` to the root — the O(depth) fast variant of
    /// [`ContentTree::repair_path`] for structure-preserving updates.
    fn repair_path_delta(&mut self, mut node: NodeIdx, d: WidthsDelta) {
        if d.is_zero() {
            return;
        }
        let mut parent = self.parent_of(node);
        while parent != NODE_IDX_NONE {
            let p = self.internal_mut(parent);
            let pos = p
                .children
                .iter()
                .position(|&c| c == node)
                .expect("broken parent pointer");
            d.apply(&mut p.widths[pos]);
            node = parent;
            parent = p.parent;
        }
    }

    /// Recomputes the cached widths on the path from `node` to the root.
    fn repair_path(&mut self, mut node: NodeIdx) {
        let mut parent = self.parent_of(node);
        while parent != NODE_IDX_NONE {
            let total = self.node_total(node);
            let p = self.internal_mut(parent);
            let pos = p
                .children
                .iter()
                .position(|&c| c == node)
                .expect("broken parent pointer");
            p.widths[pos] = total;
            node = parent;
            parent = self.parent_of(node);
        }
    }

    /// Splits an overflowing leaf, notifying for every moved entry.
    /// Returns the new leaf's index.
    fn split_leaf<NF: FnMut(&E, NodeIdx)>(
        &mut self,
        leaf_idx: NodeIdx,
        notify: &mut NF,
    ) -> NodeIdx {
        let new_idx = self.nodes.len() as NodeIdx;
        let (moved, parent, next) = {
            let l = self.leaf_mut(leaf_idx);
            let keep = l.entries.len() / 2;
            let moved: Vec<E> = l.entries.split_off(keep);
            let parent = l.parent;
            let next = l.next;
            l.next = new_idx;
            (moved, parent, next)
        };
        for e in &moved {
            notify(e, new_idx);
        }
        self.nodes.push(Node::Leaf(Leaf {
            parent,
            entries: moved,
            next,
        }));
        self.insert_child_after(parent, leaf_idx, new_idx);
        new_idx
    }

    /// Inserts `new_child` directly after `after` under `parent`
    /// (creating a new root when `parent` is none), splitting internal
    /// nodes as needed. Fixes the cached widths of both children.
    fn insert_child_after(&mut self, parent: NodeIdx, after: NodeIdx, new_child: NodeIdx) {
        if parent == NODE_IDX_NONE {
            // `after` was the root; grow the tree.
            let new_root = self.nodes.len() as NodeIdx;
            let w_after = self.node_total(after);
            let w_new = self.node_total(new_child);
            self.nodes.push(Node::Internal(Internal {
                parent: NODE_IDX_NONE,
                children: vec![after, new_child],
                widths: vec![w_after, w_new],
            }));
            self.set_parent(after, new_root);
            self.set_parent(new_child, new_root);
            self.root = new_root;
            return;
        }
        let w_after = self.node_total(after);
        let w_new = self.node_total(new_child);
        let overflow = {
            let p = self.internal_mut(parent);
            let pos = p
                .children
                .iter()
                .position(|&c| c == after)
                .expect("child not under parent");
            p.widths[pos] = w_after;
            p.children.insert(pos + 1, new_child);
            p.widths.insert(pos + 1, w_new);
            p.children.len() > N
        };
        self.set_parent(new_child, parent);
        if overflow {
            self.split_internal(parent);
        }
    }

    /// Splits an overflowing internal node.
    fn split_internal(&mut self, idx: NodeIdx) {
        let new_idx = self.nodes.len() as NodeIdx;
        let (moved_children, moved_widths, parent) = {
            let n = self.internal_mut(idx);
            let keep = n.children.len() / 2;
            (
                n.children.split_off(keep),
                n.widths.split_off(keep),
                n.parent,
            )
        };
        self.nodes.push(Node::Internal(Internal {
            parent,
            children: moved_children.clone(),
            widths: moved_widths,
        }));
        for c in moved_children {
            self.set_parent(c, new_idx);
        }
        self.insert_child_after(parent, idx, new_idx);
    }

    fn set_parent(&mut self, idx: NodeIdx, parent: NodeIdx) {
        match &mut self.nodes[idx as usize] {
            Node::Internal(n) => n.parent = parent,
            Node::Leaf(l) => l.parent = parent,
        }
    }

    /// Inserts entry `e` at the cursor position, keeping entries RLE-merged
    /// when possible. Calls `notify(entry, leaf)` for the inserted entry and
    /// for every entry relocated by leaf splits.
    ///
    /// Returns a cursor pointing at the start of the inserted content (which
    /// may be in the middle of a merged entry).
    pub fn insert_at<NF: FnMut(&E, NodeIdx)>(
        &mut self,
        cursor: Cursor,
        e: E,
        notify: &mut NF,
    ) -> Cursor {
        let leaf_idx = cursor.leaf;
        let mut entry_idx = cursor.entry_idx;
        let mut offset = cursor.offset;

        // Normalise an end-of-entry offset to the next boundary.
        {
            let l = self.leaf(leaf_idx);
            if entry_idx < l.entries.len() && offset == l.entries[entry_idx].len() {
                entry_idx += 1;
                offset = 0;
            }
        }

        let e_len = e.len();
        // Whatever the insertion path, ancestor totals grow by exactly the
        // new entry's widths (boundary splits move units, net zero).
        let net = WidthsDelta::gain(Widths::of(&e));
        if offset == 0 {
            // Try appending to the previous entry in this leaf.
            if entry_idx > 0 {
                let l = self.leaf_mut(leaf_idx);
                let prev = &mut l.entries[entry_idx - 1];
                if prev.can_append(&e) {
                    let at = prev.len();
                    prev.append(e.clone());
                    notify(&e, leaf_idx);
                    self.repair_path_delta(leaf_idx, net);
                    return Cursor {
                        leaf: leaf_idx,
                        entry_idx: entry_idx - 1,
                        offset: at,
                    };
                }
            }
            self.insert_entries_at(leaf_idx, entry_idx, vec![e], Some(net), notify);
        } else {
            // Split the containing entry and insert in between.
            let tail = {
                let l = self.leaf_mut(leaf_idx);
                l.entries[entry_idx].truncate(offset)
            };
            self.insert_entries_at(leaf_idx, entry_idx + 1, vec![e, tail], Some(net), notify);
            entry_idx += 1;
        }

        // Find where the new entry ended up (splits may have moved it).
        let (leaf_idx, entry_idx) = self.locate_after_insert(leaf_idx, entry_idx);
        notify(&self.leaf(leaf_idx).entries[entry_idx].clone(), leaf_idx);
        debug_assert_eq!(self.leaf(leaf_idx).entries[entry_idx].len(), e_len);
        Cursor {
            leaf: leaf_idx,
            entry_idx,
            offset: 0,
        }
    }

    /// Inserts `extra` entries at `entry_idx` of `leaf_idx`, splitting on
    /// overflow and repairing widths. The caller re-locates positions after.
    ///
    /// `net` is the caller-known change to the subtree total (new material
    /// only — pieces split off existing entries cancel out); when given
    /// and no split occurs, the repair is O(depth) instead of
    /// O(depth × fanout). `None` forces a full recompute.
    fn insert_entries_at<NF: FnMut(&E, NodeIdx)>(
        &mut self,
        leaf_idx: NodeIdx,
        entry_idx: usize,
        extra: Vec<E>,
        net: Option<WidthsDelta>,
        notify: &mut NF,
    ) {
        {
            let l = self.leaf_mut(leaf_idx);
            for (i, e) in extra.into_iter().enumerate() {
                l.entries.insert(entry_idx + i, e);
            }
        }
        let mut last_new = leaf_idx;
        while self.leaf(last_new).entries.len() > N {
            last_new = self.split_leaf(last_new, notify);
        }
        if last_new == leaf_idx {
            match net {
                Some(d) => self.repair_path_delta(leaf_idx, d),
                None => self.repair_path(leaf_idx),
            }
        } else {
            // Splits rewrote ancestor slots wholesale; recompute both
            // changed root paths.
            self.repair_path(leaf_idx);
            self.repair_path(last_new);
        }
    }

    /// After `insert_entries_at`, finds the leaf/index where the entry
    /// originally inserted at (`leaf_idx`, `entry_idx`) now lives.
    fn locate_after_insert(&self, mut leaf_idx: NodeIdx, mut entry_idx: usize) -> (NodeIdx, usize) {
        loop {
            let l = self.leaf(leaf_idx);
            if entry_idx < l.entries.len() {
                return (leaf_idx, entry_idx);
            }
            entry_idx -= l.entries.len();
            leaf_idx = l.next;
            assert_ne!(leaf_idx, NODE_IDX_NONE, "entry lost after split");
        }
    }

    /// Applies an arbitrary in-place edit to the entry at
    /// (`leaf`, `entry_idx`) and repairs ancestor widths by delta
    /// (O(depth)), without splitting or relocating anything.
    ///
    /// This is the zero-allocation edit primitive for entry types that can
    /// grow or shrink in place (e.g. a rope chunk absorbing an insertion
    /// into its buffer). The edit may change the entry's length and widths
    /// arbitrarily but must leave it non-empty.
    ///
    /// # Panics
    ///
    /// Panics if the slot does not hold an entry.
    pub fn update_entry<F: FnOnce(&mut E)>(&mut self, leaf: NodeIdx, entry_idx: usize, f: F) {
        let (before, after) = {
            let e = &mut self.leaf_mut(leaf).entries[entry_idx];
            let before = Widths::of(e);
            f(e);
            debug_assert!(!e.is_empty(), "update_entry left an empty entry");
            (before, Widths::of(e))
        };
        self.repair_path_delta(leaf, WidthsDelta::change(before, after));
    }

    /// Mutates up to `max_len` units of the entry under `cursor`, starting
    /// at the cursor offset, splitting the entry as needed so the mutation
    /// applies exactly to that sub-range.
    ///
    /// Returns `(mutated_len, leaf, entry_idx)` locating the mutated piece.
    /// `notify` fires for entries relocated by splits (including pieces of
    /// the split entry itself).
    pub fn mutate_entry<F, NF>(
        &mut self,
        cursor: &Cursor,
        max_len: usize,
        mutate: F,
        notify: &mut NF,
    ) -> (usize, NodeIdx, usize)
    where
        F: FnOnce(&mut E),
        NF: FnMut(&E, NodeIdx),
    {
        let leaf_idx = cursor.leaf;
        let mut entry_idx = cursor.entry_idx;
        let offset = cursor.offset;
        let entry_len = self.leaf(leaf_idx).entries[entry_idx].len();
        assert!(offset < entry_len, "cursor must point inside the entry");
        let len = max_len.min(entry_len - offset);
        assert!(len > 0);

        let mut extra: Vec<E> = Vec::new();
        let mut target_shift = 0usize;
        {
            let l = self.leaf_mut(leaf_idx);
            if offset > 0 {
                let tail = l.entries[entry_idx].truncate(offset);
                extra.push(tail);
                target_shift = 1;
            }
        }
        // extra[0] (if split) is the piece we mutate, or the entry itself.
        let net = if target_shift == 1 {
            if len < extra[0].len() {
                let post = extra[0].truncate(len);
                extra.push(post);
            }
            let before = Widths::of(&extra[0]);
            mutate(&mut extra[0]);
            WidthsDelta::change(before, Widths::of(&extra[0]))
        } else {
            let l = self.leaf_mut(leaf_idx);
            if len < entry_len {
                let post = l.entries[entry_idx].truncate(len);
                extra.push(post);
            }
            let before = Widths::of(&l.entries[entry_idx]);
            mutate(&mut l.entries[entry_idx]);
            WidthsDelta::change(before, Widths::of(&l.entries[entry_idx]))
        };
        if extra.is_empty() {
            self.repair_path_delta(leaf_idx, net);
            return (len, leaf_idx, entry_idx);
        }
        self.insert_entries_at(leaf_idx, entry_idx + 1, extra, Some(net), notify);
        entry_idx += target_shift;
        let (leaf_idx, entry_idx) = self.locate_after_insert(leaf_idx, entry_idx);
        // The mutated piece may have been relocated by a split; re-notify it.
        notify(&self.leaf(leaf_idx).entries[entry_idx].clone(), leaf_idx);
        (len, leaf_idx, entry_idx)
    }

    /// Mutates a run of consecutive entries within the leaf under `cursor`
    /// in one pass, with a single width repair at the end — the batched
    /// counterpart of repeated [`ContentTree::mutate_entry`] calls.
    ///
    /// For every entry from the cursor onwards (bounded by the leaf),
    /// `policy(&entry, offset)` decides the [`RunStep`]: mutate a prefix of
    /// the entry's remaining units (splitting boundary pieces as needed),
    /// skip it, or stop. `offset` is nonzero only for the first entry (the
    /// cursor's offset). The policy observes each piece *before* mutation
    /// and is called exactly once per **piece**: when `Mutate(n)` covers
    /// only a prefix, the split-off untouched remainder is re-presented to
    /// the policy as its own piece — stateful policies (e.g. recording the
    /// sub-ranges chosen) must count pieces, not original entries.
    /// `mutate` is applied to each chosen piece; `notify` fires for
    /// entries relocated by overflow splits.
    ///
    /// Cached widths are stale while the batch runs and repaired once at
    /// the end, so `policy`/`mutate` must not re-enter the tree.
    pub fn mutate_run<P, F, NF>(
        &mut self,
        cursor: &Cursor,
        mut policy: P,
        mutate: F,
        notify: &mut NF,
    ) where
        P: FnMut(&E, usize) -> RunStep,
        F: Fn(&mut E),
        NF: FnMut(&E, NodeIdx),
    {
        let leaf_idx = cursor.leaf;
        let mut idx = cursor.entry_idx;
        let mut off = cursor.offset;
        let mut net = WidthsDelta::default();
        loop {
            let n_entries = self.leaf(leaf_idx).entries.len();
            if idx >= n_entries {
                break;
            }
            let entry_len = self.leaf(leaf_idx).entries[idx].len();
            if off >= entry_len {
                idx += 1;
                off = 0;
                continue;
            }
            match policy(&self.leaf(leaf_idx).entries[idx], off) {
                RunStep::Stop => break,
                RunStep::Skip => {
                    idx += 1;
                    off = 0;
                }
                RunStep::Mutate(n) => {
                    assert!(n > 0 && off + n <= entry_len, "bad RunStep::Mutate length");
                    if off > 0 {
                        // Split off the untouched head; the piece to mutate
                        // becomes the entry at idx + 1.
                        let tail = self.leaf_mut(leaf_idx).entries[idx].truncate(off);
                        self.leaf_mut(leaf_idx).entries.insert(idx + 1, tail);
                        idx += 1;
                        off = 0;
                    }
                    if n < self.leaf(leaf_idx).entries[idx].len() {
                        // Split off the untouched tail.
                        let tail = self.leaf_mut(leaf_idx).entries[idx].truncate(n);
                        self.leaf_mut(leaf_idx).entries.insert(idx + 1, tail);
                    }
                    let piece = &mut self.leaf_mut(leaf_idx).entries[idx];
                    let before = Widths::of(piece);
                    mutate(piece);
                    net.accumulate(WidthsDelta::change(before, Widths::of(piece)));
                    idx += 1;
                }
            }
        }
        // Resolve any overflow from the batch's splits. The policy may
        // have multiplied the leaf's entries well past 2N, and splitting
        // inserts the right half directly after the split leaf — so walk
        // the affected region [leaf_idx, original successor) left to
        // right, re-splitting until every leaf in it fits. `stop` is
        // captured first: all new leaves land before it.
        let stop = self.leaf(leaf_idx).next;
        let mut split_occurred = false;
        let mut cur = leaf_idx;
        while cur != stop {
            if self.leaf(cur).entries.len() > N {
                self.split_leaf(cur, notify);
                split_occurred = true;
                continue; // re-check `cur`: its kept half may still overflow
            }
            cur = self.leaf(cur).next;
        }
        // Repair widths: incrementally (O(depth)) when the structure is
        // unchanged; otherwise fully, for every leaf of the region —
        // splits refresh the immediate parent slots but a region spanning
        // several internal nodes can leave stale totals off the first and
        // last root paths.
        if !split_occurred {
            self.repair_path_delta(leaf_idx, net);
        } else {
            let mut cur = leaf_idx;
            while cur != stop {
                self.repair_path(cur);
                cur = self.leaf(cur).next;
            }
        }
    }

    /// Deletes `del_len` units starting at `cur`-dimension position `pos`.
    ///
    /// Only supported when every entry is fully visible in the `cur`
    /// dimension (single-dimension usage, e.g. a rope) — deletion positions
    /// are interpreted in raw units. Leaves are allowed to become underfull
    /// (no rebalancing); they are skipped during iteration.
    pub fn delete_cur_range(&mut self, pos: usize, mut del_len: usize) {
        let mut cursor = self.cursor_at_cur_pos(pos);
        let mut no_notify = |_: &E, _: NodeIdx| {};
        while del_len > 0 {
            let l = self.leaf(cursor.leaf);
            if cursor.entry_idx >= l.entries.len() {
                let next = l.next;
                assert_ne!(next, NODE_IDX_NONE, "delete past end of tree");
                self.repair_path(cursor.leaf);
                cursor = Cursor {
                    leaf: next,
                    entry_idx: 0,
                    offset: 0,
                };
                continue;
            }
            let e_len = l.entries[cursor.entry_idx].len();
            if cursor.offset == e_len {
                cursor.entry_idx += 1;
                cursor.offset = 0;
                continue;
            }
            if cursor.offset == 0 && del_len >= e_len {
                self.leaf_mut(cursor.leaf).entries.remove(cursor.entry_idx);
                del_len -= e_len;
            } else if cursor.offset == 0 {
                // Remove a prefix of the entry.
                self.leaf_mut(cursor.leaf).entries[cursor.entry_idx]
                    .truncate_keeping_right(del_len);
                del_len = 0;
            } else if cursor.offset + del_len >= e_len {
                // Remove a suffix of the entry.
                let removed = e_len - cursor.offset;
                self.leaf_mut(cursor.leaf).entries[cursor.entry_idx].truncate(cursor.offset);
                del_len -= removed;
                cursor.entry_idx += 1;
                cursor.offset = 0;
            } else {
                // Remove from the middle: split and drop the middle piece.
                let tail = {
                    let e = &mut self.leaf_mut(cursor.leaf).entries[cursor.entry_idx];
                    let mut tail = e.truncate(cursor.offset);
                    tail.truncate_keeping_right(del_len);
                    tail
                };
                let leaf_idx = cursor.leaf;
                self.insert_entries_at(
                    leaf_idx,
                    cursor.entry_idx + 1,
                    vec![tail],
                    None,
                    &mut no_notify,
                );
                self.repair_path(leaf_idx);
                return;
            }
        }
        self.repair_path(cursor.leaf);
    }

    // ------------------------------------------------------------------
    // Validation (used by tests).
    // ------------------------------------------------------------------

    /// Checks every tree invariant, panicking on violation. Test-only; slow.
    pub fn check(&self) {
        // Leaf chain visits every leaf exactly once, left to right.
        let mut chain = Vec::new();
        let mut leaf = self.first_leaf;
        while leaf != NODE_IDX_NONE {
            chain.push(leaf);
            leaf = self.leaf(leaf).next;
        }
        let mut dfs_leaves = Vec::new();
        self.collect_leaves(self.root, &mut dfs_leaves);
        assert_eq!(chain, dfs_leaves, "leaf chain does not match tree order");

        self.check_node(self.root, NODE_IDX_NONE);
    }

    fn collect_leaves(&self, idx: NodeIdx, out: &mut Vec<NodeIdx>) {
        match &self.nodes[idx as usize] {
            Node::Internal(n) => {
                for &c in &n.children {
                    self.collect_leaves(c, out);
                }
            }
            Node::Leaf(_) => out.push(idx),
        }
    }

    fn check_node(&self, idx: NodeIdx, expected_parent: NodeIdx) -> Widths {
        match &self.nodes[idx as usize] {
            Node::Internal(n) => {
                assert_eq!(n.parent, expected_parent, "bad parent at {idx}");
                assert!(!n.children.is_empty());
                assert!(n.children.len() <= N);
                assert_eq!(n.children.len(), n.widths.len());
                let mut total = Widths::default();
                for (i, &c) in n.children.iter().enumerate() {
                    let w = self.check_node(c, idx);
                    assert_eq!(w, n.widths[i], "stale cached width at {idx}[{i}]");
                    total.add(w);
                }
                total
            }
            Node::Leaf(l) => {
                assert_eq!(l.parent, expected_parent, "bad parent at leaf {idx}");
                assert!(l.entries.len() <= N);
                let mut total = Widths::default();
                for e in &l.entries {
                    assert!(!e.is_empty(), "empty entry stored");
                    let wc = e.width_cur();
                    let we = e.width_end();
                    assert!(wc == 0 || wc == e.len(), "non-uniform cur width");
                    assert!(we == 0 || we == e.len(), "non-uniform end width");
                    total.add(Widths::of(e));
                }
                total
            }
        }
    }
}

/// Iterator over the tree's entries in order. See [`ContentTree::iter`].
pub struct TreeIter<'a, E: TreeEntry, const N: usize = DEFAULT_FANOUT> {
    tree: &'a ContentTree<E, N>,
    leaf: NodeIdx,
    entry_idx: usize,
}

impl<'a, E: TreeEntry, const N: usize> Iterator for TreeIter<'a, E, N> {
    type Item = &'a E;

    fn next(&mut self) -> Option<&'a E> {
        loop {
            if self.leaf == NODE_IDX_NONE {
                return None;
            }
            let l = self.tree.leaf(self.leaf);
            if self.entry_idx < l.entries.len() {
                let e = &l.entries[self.entry_idx];
                self.entry_idx += 1;
                return Some(e);
            }
            self.leaf = l.next;
            self.entry_idx = 0;
        }
    }
}
