//! Model-based tests: the B-tree against a flat `Vec` of units.

use eg_content_tree::{ContentTree, LeafIdx, RunStep, TreeEntry};
use eg_rle::{HasLength, MergableSpan, SplitableSpan};
use proptest::prelude::*;

/// A test span: `len` units starting at id `start`, with uniform visibility
/// flags in both dimensions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct TestSpan {
    start: usize,
    len: usize,
    cur: bool,
    end: bool,
}

impl HasLength for TestSpan {
    fn len(&self) -> usize {
        self.len
    }
}

impl SplitableSpan for TestSpan {
    fn truncate(&mut self, at: usize) -> Self {
        let rem = TestSpan {
            start: self.start + at,
            len: self.len - at,
            cur: self.cur,
            end: self.end,
        };
        self.len = at;
        rem
    }
}

impl MergableSpan for TestSpan {
    fn can_append(&self, other: &Self) -> bool {
        self.start + self.len == other.start && self.cur == other.cur && self.end == other.end
    }

    fn append(&mut self, other: Self) {
        self.len += other.len;
    }
}

impl TreeEntry for TestSpan {
    fn width_cur(&self) -> usize {
        if self.cur {
            self.len
        } else {
            0
        }
    }

    fn width_end(&self) -> usize {
        if self.end {
            self.len
        } else {
            0
        }
    }
}

/// One unit of the flat model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Unit {
    id: usize,
    cur: bool,
    end: bool,
}

#[derive(Default)]
struct Model {
    units: Vec<Unit>,
}

impl Model {
    fn total_cur(&self) -> usize {
        self.units.iter().filter(|u| u.cur).count()
    }

    /// Flat index of the k-th cur-visible unit.
    fn cur_unit_index(&self, k: usize) -> usize {
        self.units
            .iter()
            .enumerate()
            .filter(|(_, u)| u.cur)
            .nth(k)
            .unwrap()
            .0
    }

    /// End-dimension offset of flat index i.
    fn end_offset_of(&self, i: usize) -> usize {
        self.units[..i].iter().filter(|u| u.end).count()
    }

    /// Flat index of cur-boundary position p (insertion point).
    fn cur_pos_index(&self, p: usize) -> usize {
        if p == self.total_cur() {
            return self.units.len();
        }
        self.cur_unit_index(p)
    }
}

fn flatten<const N: usize>(tree: &ContentTree<TestSpan, N>) -> Vec<Unit> {
    let mut out = Vec::new();
    for e in tree.iter() {
        for i in 0..e.len {
            out.push(Unit {
                id: e.start + i,
                cur: e.cur,
                end: e.end,
            });
        }
    }
    out
}

#[derive(Debug, Clone)]
enum Op {
    /// Insert `len` fresh visible units at cur-boundary `pos_frac` of total.
    Insert { pos_bp: u16, len: usize },
    /// Starting at the cur-unit at `pos_frac`, flip up to `len` units'
    /// flags to (cur', end').
    Mutate {
        pos_bp: u16,
        len: usize,
        cur: bool,
        end: bool,
    },
    /// Same as `Mutate`, but through the span-batched `mutate_run` API:
    /// up to `len` cur-visible units from the position, skipping
    /// cur-invisible entries, bounded by the leaf.
    MutateRun {
        pos_bp: u16,
        len: usize,
        cur: bool,
        end: bool,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u16..=10_000, 1usize..12).prop_map(|(pos_bp, len)| Op::Insert { pos_bp, len }),
        (0u16..=10_000, 1usize..8, any::<bool>(), any::<bool>()).prop_map(
            |(pos_bp, len, cur, end)| Op::Mutate {
                pos_bp,
                len,
                cur,
                end
            }
        ),
        (0u16..=10_000, 1usize..24, any::<bool>(), any::<bool>()).prop_map(
            |(pos_bp, len, cur, end)| Op::MutateRun {
                pos_bp,
                len,
                cur,
                end
            }
        ),
    ]
}

fn apply_ops<const N: usize>(ops: &[Op]) -> (ContentTree<TestSpan, N>, Model) {
    let mut tree: ContentTree<TestSpan, N> = ContentTree::new();
    let mut model = Model::default();
    let mut next_id = 0usize;
    for op in ops {
        match *op {
            Op::Insert { pos_bp, len } => {
                let total = model.total_cur();
                let pos = (pos_bp as usize * total) / 10_000;
                let span = TestSpan {
                    start: next_id,
                    len,
                    cur: true,
                    end: true,
                };
                next_id += len + 1; // +1 so consecutive inserts do not merge
                let cursor = tree.cursor_at_cur_pos(pos);
                tree.insert_at(cursor, span, &mut |_, _| {});
                let at = model.cur_pos_index(pos);
                for i in 0..len {
                    model.units.insert(
                        at + i,
                        Unit {
                            id: span.start + i,
                            cur: true,
                            end: true,
                        },
                    );
                }
            }
            Op::Mutate {
                pos_bp,
                len,
                cur,
                end,
            } => {
                let total = model.total_cur();
                if total == 0 {
                    continue;
                }
                let k = (pos_bp as usize * (total - 1)) / 10_000;
                let (cursor, end_off) = tree.cursor_at_cur_unit(k);
                // Validate the reported end offset against the model.
                let flat = model.cur_unit_index(k);
                assert_eq!(end_off, model.end_offset_of(flat), "end offset mismatch");
                let (mutated, _, _) = tree.mutate_entry(
                    &cursor,
                    len,
                    |e| {
                        e.cur = cur;
                        e.end = end;
                    },
                    &mut |_, _| {},
                );
                // Mirror: the mutated range is `mutated` raw units starting
                // at the flat index (entries are uniform so the run is
                // contiguous raw units).
                for u in model.units[flat..flat + mutated].iter_mut() {
                    u.cur = cur;
                    u.end = end;
                }
            }
            Op::MutateRun {
                pos_bp,
                len,
                cur,
                end,
            } => {
                let total = model.total_cur();
                if total == 0 {
                    continue;
                }
                let k = (pos_bp as usize * (total - 1)) / 10_000;
                let (cursor, _) = tree.cursor_at_cur_unit(k);
                // Batch: mutate up to `len` cur-visible units, skipping
                // cur-invisible entries, within the cursor's leaf. The
                // policy records the chosen id ranges for mirroring.
                let mut remaining = len;
                let mut picked: Vec<(usize, usize)> = Vec::new();
                tree.mutate_run(
                    &cursor,
                    |e, off| {
                        if remaining == 0 {
                            return RunStep::Stop;
                        }
                        if e.width_cur() == 0 {
                            return RunStep::Skip;
                        }
                        let take = remaining.min(e.len - off);
                        picked.push((e.start + off, take));
                        remaining -= take;
                        RunStep::Mutate(take)
                    },
                    |e| {
                        e.cur = cur;
                        e.end = end;
                    },
                    &mut |_, _| {},
                );
                assert!(!picked.is_empty(), "cursor entry must be mutable");
                for &(start, n) in &picked {
                    for u in model.units.iter_mut() {
                        if (start..start + n).contains(&u.id) {
                            u.cur = cur;
                            u.end = end;
                        }
                    }
                }
            }
        }
        tree.check();
        assert_eq!(flatten(&tree), model.units, "content mismatch");
    }
    (tree, model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn model_equivalence(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let (tree, model) = apply_ops::<16>(&ops);
        // Verify order statistics at every cur position.
        let total = model.total_cur();
        let got = tree.total_widths();
        prop_assert_eq!(got.cur, total);
        prop_assert_eq!(got.end, model.units.iter().filter(|u| u.end).count());
        for k in 0..total {
            let (cursor, end_off) = tree.cursor_at_cur_unit(k);
            let flat = model.cur_unit_index(k);
            let e = tree.entry_at(&cursor);
            prop_assert_eq!(e.start + cursor.offset, model.units[flat].id);
            prop_assert_eq!(end_off, model.end_offset_of(flat));
        }
    }

    /// Splitting behaviour is fanout-dependent; re-run the model at a tiny
    /// fanout (deep trees, frequent splits) and a large one (wide leaves).
    #[test]
    fn model_equivalence_fanout_4(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let (tree, model) = apply_ops::<4>(&ops);
        prop_assert_eq!(flatten(&tree), model.units);
    }

    #[test]
    fn model_equivalence_fanout_64(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let (tree, model) = apply_ops::<64>(&ops);
        prop_assert_eq!(flatten(&tree), model.units);
    }

    /// `offset_of` (the upward walk) agrees with the model for every entry.
    #[test]
    fn offsets_match(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let (tree, model) = apply_ops::<16>(&ops);
        // Walk every entry via a cursor and compare offset_of with a scan.
        let mut cursor = tree.cursor_at_start();
        let mut flat = 0usize;
        loop {
            if !tree.cursor_valid(&cursor) && !tree.cursor_next_entry(&mut cursor) {
                break;
            }
            let e = *tree.entry_at(&cursor);
            let w = tree.offset_of(cursor.leaf, cursor.entry_idx);
            let exp_cur = model.units[..flat].iter().filter(|u| u.cur).count();
            let exp_end = model.units[..flat].iter().filter(|u| u.end).count();
            prop_assert_eq!(w.cur, exp_cur);
            prop_assert_eq!(w.end, exp_end);
            flat += e.len;
            if !tree.cursor_next_entry(&mut cursor) {
                break;
            }
        }
        prop_assert_eq!(flat, model.units.len());
    }
}

/// Regression: a `mutate_run` policy may split every entry it visits
/// (here each length-3 entry becomes three), growing the leaf far past
/// `2 * N` before overflow resolution runs. The resolution loop must
/// re-split every over-full leaf in the affected region, not just the
/// first and last.
#[test]
fn mutate_run_many_splits_keeps_invariants() {
    let mut tree: ContentTree<TestSpan, 16> = ContentTree::new();
    let mut model = Model::default();
    // Fill one leaf to capacity with length-3 entries (gapped ids so they
    // never merge).
    for i in 0..16 {
        let span = TestSpan {
            start: i * 10,
            len: 3,
            cur: true,
            end: true,
        };
        let cursor = tree.cursor_at_cur_pos(i * 3);
        tree.insert_at(cursor, span, &mut |_, _| {});
        for k in 0..3 {
            model.units.push(Unit {
                id: i * 10 + k,
                cur: true,
                end: true,
            });
        }
    }
    tree.check();
    // Mutate one unit of every entry: 16 entries explode into 48.
    let cursor = tree.cursor_at_cur_pos(0);
    let mut picked: Vec<usize> = Vec::new();
    tree.mutate_run(
        &cursor,
        |e, off| {
            picked.push(e.start + off);
            RunStep::Mutate(1)
        },
        |e| {
            e.end = false;
        },
        &mut |_, _| {},
    );
    tree.check();
    for u in model.units.iter_mut() {
        if picked.contains(&u.id) {
            u.end = false;
        }
    }
    assert_eq!(flatten(&tree), model.units);
    assert_eq!(tree.total_widths().end, model.units.len() - picked.len());
}

#[test]
fn delete_range_model() {
    // Single-dimension (rope-style) usage: all entries fully visible.
    let mut tree: ContentTree<TestSpan> = ContentTree::new();
    let mut model: Vec<usize> = Vec::new();
    let mut next_id = 0usize;
    let mut seed = 0x1234_5678_u64;
    let mut rand = move |bound: usize| {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed as usize) % bound.max(1)
    };
    for step in 0..400 {
        if model.is_empty() || step % 3 != 0 {
            let len = 1 + rand(6);
            let pos = rand(model.len() + 1);
            let span = TestSpan {
                start: next_id,
                len,
                cur: true,
                end: true,
            };
            next_id += len + 1;
            let cursor = tree.cursor_at_cur_pos(pos);
            tree.insert_at(cursor, span, &mut |_, _| {});
            for i in 0..len {
                model.insert(pos + i, span.start + i);
            }
        } else {
            let pos = rand(model.len());
            let len = (1 + rand(8)).min(model.len() - pos);
            tree.delete_cur_range(pos, len);
            model.drain(pos..pos + len);
        }
        tree.check();
        let flat: Vec<usize> = flatten(&tree).iter().map(|u| u.id).collect();
        assert_eq!(flat, model, "mismatch after step {step}");
    }
}

#[test]
fn notify_reports_every_entry_location() {
    use std::collections::HashMap;
    // Maintain an id → leaf map purely from notifications, then verify it.
    let mut tree: ContentTree<TestSpan> = ContentTree::new();
    let mut index: HashMap<usize, LeafIdx> = HashMap::new();
    let mut next_id = 0usize;
    let mut seed = 42u64;
    let mut rand = move |bound: usize| {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed as usize) % bound.max(1)
    };
    let mut total = 0usize;
    for _ in 0..300 {
        let len = 1 + rand(5);
        let pos = rand(total + 1);
        let span = TestSpan {
            start: next_id,
            len,
            cur: true,
            end: true,
        };
        next_id += len + 1;
        total += len;
        let cursor = tree.cursor_at_cur_pos(pos);
        tree.insert_at(cursor, span, &mut |e: &TestSpan, leaf| {
            for i in 0..e.len {
                index.insert(e.start + i, leaf);
            }
        });
    }
    // Every unit's recorded leaf must actually contain it.
    let mut found = 0usize;
    let mut cursor = tree.cursor_at_start();
    loop {
        if tree.cursor_valid(&cursor) {
            let e = *tree.entry_at(&cursor);
            for i in 0..e.len {
                let leaf = index[&(e.start + i)];
                assert_eq!(leaf, cursor.leaf, "stale index for unit {}", e.start + i);
                found += 1;
            }
        }
        if !tree.cursor_next_entry(&mut cursor) {
            break;
        }
    }
    assert_eq!(found, total);
}
