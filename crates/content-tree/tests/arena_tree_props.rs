//! Arena-level property tests: the slab layout, free lists, and the
//! capacity-retaining `clear()` contract, checked in lockstep with a flat
//! `Vec` reference.
//!
//! `model.rs` establishes that the tree's *content* matches a flat model;
//! this suite pins the *arena* behaviour the tracker's reuse path depends
//! on: emptied leaves land on the free list, splits recycle freed slots
//! before growing the slab, and `clear()` resets the tree without
//! releasing slab capacity.

use eg_content_tree::{ArenaStats, ContentTree, TreeEntry};
use eg_rle::{HasLength, MergableSpan, SplitableSpan};
use proptest::prelude::*;

/// A run of `len` ids starting at `start`, fully visible in both
/// dimensions (rope-style usage, which is what drives leaf freeing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Span {
    start: usize,
    len: usize,
}

impl HasLength for Span {
    fn len(&self) -> usize {
        self.len
    }
}

impl SplitableSpan for Span {
    fn truncate(&mut self, at: usize) -> Self {
        let rem = Span {
            start: self.start + at,
            len: self.len - at,
        };
        self.len = at;
        rem
    }
}

impl MergableSpan for Span {
    fn can_append(&self, other: &Self) -> bool {
        self.start + self.len == other.start
    }

    fn append(&mut self, other: Self) {
        self.len += other.len;
    }
}

impl TreeEntry for Span {
    fn width_cur(&self) -> usize {
        self.len
    }

    fn width_end(&self) -> usize {
        self.len
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// Insert `len` fresh ids at position `pos_bp`/10_000 of the total.
    Insert { pos_bp: u16, len: usize },
    /// Delete up to `len` ids at position `pos_bp`/10_000 of the total.
    Delete { pos_bp: u16, len: usize },
    /// Reset the tree (and model), keeping slab capacity.
    Clear,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (0u16..=10_000, 1usize..20).prop_map(|(pos_bp, len)| Op::Insert { pos_bp, len }),
        3 => (0u16..=10_000, 1usize..40).prop_map(|(pos_bp, len)| Op::Delete { pos_bp, len }),
        1 => Just(Op::Clear),
    ]
}

fn flatten<const N: usize>(tree: &ContentTree<Span, N>) -> Vec<usize> {
    tree.iter()
        .flat_map(|e| (e.start..e.start + e.len).collect::<Vec<_>>())
        .collect()
}

/// Slab slots never leak: every slot is either live in the tree or parked
/// on a free list (`check()` asserts the exact accounting), and the slab
/// never exceeds the high-water mark of concurrently live nodes.
fn run_ops<const N: usize>(ops: &[Op]) -> Result<(), TestCaseError> {
    let mut tree: ContentTree<Span, N> = ContentTree::new();
    let mut model: Vec<usize> = Vec::new();
    let mut next_id = 0usize;
    let mut capacity_floor = ArenaStats::default();
    for op in ops {
        match *op {
            Op::Insert { pos_bp, len } => {
                let pos = (pos_bp as usize * model.len()) / 10_000;
                let span = Span {
                    start: next_id,
                    len,
                };
                next_id += len + 1; // gap: consecutive inserts never merge
                let cursor = tree.cursor_at_cur_pos(pos);
                tree.insert_at(cursor, span, &mut |_, _| {});
                for i in 0..len {
                    model.insert(pos + i, span.start + i);
                }
            }
            Op::Delete { pos_bp, len } => {
                if model.is_empty() {
                    continue;
                }
                let pos = (pos_bp as usize * (model.len() - 1)) / 10_000;
                let len = len.min(model.len() - pos);
                tree.delete_cur_range(pos, len);
                model.drain(pos..pos + len);
            }
            Op::Clear => {
                let before = tree.arena_stats();
                tree.clear();
                model.clear();
                let after = tree.arena_stats();
                // Slab capacity is retained across clear().
                prop_assert!(after.leaf_capacity >= before.leaf_capacity);
                prop_assert!(after.internal_capacity >= before.internal_capacity);
                // ... but the live/free populations reset to a root leaf.
                prop_assert_eq!(after.leaf_slots, 1);
                prop_assert_eq!(after.internal_slots, 0);
                prop_assert_eq!(after.free_leaves, 0);
                prop_assert_eq!(after.free_internals, 0);
            }
        }
        tree.check();
        prop_assert_eq!(flatten(&tree), model.clone(), "content mismatch");
        let stats = tree.arena_stats();
        capacity_floor.leaf_capacity = capacity_floor.leaf_capacity.max(stats.leaf_capacity);
        capacity_floor.internal_capacity = capacity_floor
            .internal_capacity
            .max(stats.internal_capacity);
        // Capacity is monotone: nothing ever shrinks the slabs.
        prop_assert_eq!(stats.leaf_capacity, capacity_floor.leaf_capacity);
        prop_assert_eq!(stats.internal_capacity, capacity_floor.internal_capacity);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arena_accounting_fanout_4(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        run_ops::<4>(&ops)?;
    }

    #[test]
    fn arena_accounting_fanout_16(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        run_ops::<16>(&ops)?;
    }
}

/// Deleting a whole region frees its leaves onto the free list, and the
/// next growth phase recycles them instead of growing the slab.
#[test]
fn freed_leaves_are_recycled() {
    let mut tree: ContentTree<Span, 4> = ContentTree::new();
    // Build enough content for a multi-level tree (gapped ids: no merging).
    for i in 0..200 {
        let cursor = tree.cursor_at_cur_pos(i * 2);
        tree.insert_at(
            cursor,
            Span {
                start: i * 10,
                len: 2,
            },
            &mut |_, _| {},
        );
    }
    tree.check();
    let grown = tree.arena_stats();
    assert!(grown.leaf_slots > 10, "expected a multi-leaf tree");

    // Delete everything but a sliver: most leaves must be freed.
    tree.delete_cur_range(2, 396);
    tree.check();
    let shrunk = tree.arena_stats();
    assert!(
        shrunk.free_leaves > grown.leaf_slots / 2,
        "emptied leaves must land on the free list ({} free of {})",
        shrunk.free_leaves,
        grown.leaf_slots
    );
    assert_eq!(shrunk.leaf_slots, grown.leaf_slots, "slab never shrinks");

    // Rebuild: splits must pop freed slots before growing the slab.
    for i in 0..200 {
        let cursor = tree.cursor_at_cur_pos(0);
        tree.insert_at(
            cursor,
            Span {
                start: 100_000 + i * 10,
                len: 2,
            },
            &mut |_, _| {},
        );
    }
    tree.check();
    let rebuilt = tree.arena_stats();
    // The exact leaf count depends on the insertion pattern, but the slab
    // may only grow once every freed slot has been recycled.
    assert!(
        rebuilt.leaf_slots == grown.leaf_slots || rebuilt.free_leaves == 0,
        "slab grew ({} -> {}) while {} freed slots sat unused",
        grown.leaf_slots,
        rebuilt.leaf_slots,
        rebuilt.free_leaves
    );
    assert!(
        rebuilt.free_leaves < shrunk.free_leaves,
        "rebuild must draw down the free list"
    );
}

/// `clear()` + rebuild to a similar size performs no slab growth: the
/// capacity bought by the first build-up is enough for the second.
#[test]
fn clear_retains_capacity_for_rebuild() {
    let mut tree: ContentTree<Span, 16> = ContentTree::new();
    let build = |tree: &mut ContentTree<Span, 16>, id_base: usize| {
        for i in 0..300 {
            let cursor = tree.cursor_at_cur_pos(i);
            tree.insert_at(
                cursor,
                Span {
                    start: id_base + i * 10,
                    len: 1,
                },
                &mut |_, _| {},
            );
        }
    };
    build(&mut tree, 0);
    tree.check();
    let first = tree.arena_stats();

    tree.clear();
    build(&mut tree, 1_000_000);
    tree.check();
    let second = tree.arena_stats();

    assert_eq!(first.leaf_capacity, second.leaf_capacity);
    assert_eq!(first.internal_capacity, second.internal_capacity);
    assert_eq!(first.leaf_slots, second.leaf_slots);
    assert_eq!(first.internal_slots, second.internal_slots);
}

/// `from_entries` (the relocatable snapshot form) round-trips with
/// `iter()`: rebuilding from a tree's entry sequence reproduces the same
/// entries, widths, and iteration order after arbitrary edit histories,
/// with the notify callback visiting every entry exactly once in order.
fn bulk_roundtrip<const N: usize>(ops: &[Op]) -> Result<(), TestCaseError> {
    let mut tree: ContentTree<Span, N> = ContentTree::new();
    let mut next_id = 0usize;
    let mut len = 0usize;
    for op in ops {
        match *op {
            Op::Insert { pos_bp, len: n } => {
                let pos = (pos_bp as usize * len) / 10_000;
                let span = Span {
                    start: next_id,
                    len: n,
                };
                next_id += n + 1;
                let cursor = tree.cursor_at_cur_pos(pos);
                tree.insert_at(cursor, span, &mut |_, _| {});
                len += n;
            }
            Op::Delete { pos_bp, len: n } => {
                if len == 0 {
                    continue;
                }
                let pos = (pos_bp as usize * (len - 1)) / 10_000;
                let n = n.min(len - pos);
                tree.delete_cur_range(pos, n);
                len -= n;
            }
            Op::Clear => {
                tree.clear();
                len = 0;
            }
        }
    }
    let entries: Vec<Span> = tree.iter().copied().collect();
    let mut notified: Vec<Span> = Vec::new();
    let rebuilt: ContentTree<Span, N> =
        ContentTree::from_entries(entries.iter().copied(), |e, _leaf| notified.push(*e));
    rebuilt.check();
    prop_assert_eq!(
        notified,
        entries.clone(),
        "notify must visit every entry in order"
    );
    prop_assert_eq!(rebuilt.iter().copied().collect::<Vec<_>>(), entries);
    prop_assert_eq!(rebuilt.total_widths(), tree.total_widths());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bulk_load_roundtrip_fanout_4(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        bulk_roundtrip::<4>(&ops)?;
    }

    #[test]
    fn bulk_load_roundtrip_fanout_16(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        bulk_roundtrip::<16>(&ops)?;
    }
}
