//! Compile-time thread-safety audit: a `ContentTree` must be `Send` (and
//! `Sync` for `&`-only access) for any `Send` entry type, so worker
//! threads in the multi-core server host can own trackers built on it.
//! The slab arena indexes nodes with plain integers — if a refactor ever
//! introduces raw-pointer parent links or `Rc` sharing, this stops
//! compiling.

use eg_content_tree::{ContentTree, TreeEntry};
use eg_rle::{HasLength, MergableSpan, SplitableSpan};

/// Minimal entry: `len` visible units.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Span {
    len: usize,
}

impl HasLength for Span {
    fn len(&self) -> usize {
        self.len
    }
}

impl SplitableSpan for Span {
    fn truncate(&mut self, at: usize) -> Self {
        let rem = Span { len: self.len - at };
        self.len = at;
        rem
    }
}

impl MergableSpan for Span {
    fn can_append(&self, _other: &Self) -> bool {
        true
    }

    fn append(&mut self, other: Self) {
        self.len += other.len;
    }
}

impl TreeEntry for Span {
    fn width_cur(&self) -> usize {
        self.len
    }

    fn width_end(&self) -> usize {
        self.len
    }
}

fn assert_send<T: Send>() {}
fn assert_sync<T: Sync>() {}

#[test]
fn content_tree_is_send_and_sync() {
    assert_send::<ContentTree<Span>>();
    assert_sync::<ContentTree<Span>>();
}
