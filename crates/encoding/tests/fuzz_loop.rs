//! Time-bounded mutation fuzzing of the storage and wire decoders
//! (ROADMAP residual: "fuzz-style loop over the encoding corpus").
//!
//! `#[ignore]`-by-default: the tier-1 suite already has the bounded
//! proptest battery in `robustness.rs`; this loop is the open-ended
//! nightly companion. Run it with
//!
//! ```text
//! EG_FUZZ_SECS=30 cargo test -p eg-encoding --test fuzz_loop --release -- --ignored
//! ```
//!
//! Starting from a corpus of *valid* frames of every kind (EGWL whole
//! files across all encode options, EGWB bundles, EGWD digests, EGWM
//! bundle batches, EGSEG segment-store files with event and checkpoint
//! records), each iteration picks a frame and a mutation — byte flips,
//! truncation, tail garbage, splicing two frames, length-field nudges —
//! and feeds the result to every decoder. Half the mutants get their
//! CRC32 trailer recomputed ("fixed up") so they penetrate past the
//! checksum and exercise the structural validation underneath; without
//! the fixup, fuzzing mostly tests the CRC. The only pass criterion is
//! *no panic, no abort*: decoders must return `Err` (or, for a mutant
//! that happens to stay valid, `Ok`) on every input. Wrong-decode bugs
//! are the robustness battery's job; this loop hunts crashes.

use eg_encoding::{
    crc32, decode, decode_bundle, decode_bundle_batch, decode_digest, decode_oplog_image, encode,
    encode_bundle, encode_bundle_batch, encode_digest, encode_oplog_image, EncodeOpts,
};
use eg_storage::{
    decode_checkpoint, decode_snapshot, encode_checkpoint, push_frame, read_checkpoint,
    scan_frames, Checkpoint, FORMAT_VERSION, RECORD_CHECKPOINT, RECORD_EVENTS, SEGMENT_MAGIC,
};
use egwalker::testgen::{random_oplog, SmallRng};
use egwalker::walker::{self, WalkerOpts};
use std::time::{Duration, Instant};

/// A valid segment-store file for `oplog`: header, one event record, one
/// checkpoint record (with tracker snapshot) — the shape `DocStore`
/// writes.
fn segment_file(oplog: &egwalker::OpLog) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(SEGMENT_MAGIC);
    out.push(FORMAT_VERSION);
    push_frame(
        &mut out,
        RECORD_EVENTS,
        &encode_bundle(&oplog.bundle_since(&[])),
    );
    let branch = oplog.checkout_tip();
    let snapshot =
        walker::tracker_at(oplog, branch.version.as_slice(), WalkerOpts::default()).to_snapshot();
    let ck = Checkpoint {
        version: branch
            .version
            .iter()
            .map(|&lv| oplog.lv_to_remote(lv))
            .collect(),
        content: branch.content.to_string(),
        snapshot: Some(snapshot),
        oplog_image: Some(encode_oplog_image(oplog)),
    };
    push_frame(&mut out, RECORD_CHECKPOINT, &encode_checkpoint(&ck));
    out
}

/// Valid frames of every wire kind, the mutation starting points.
fn corpus() -> Vec<Vec<u8>> {
    let mut frames = Vec::new();
    for seed in [1u64, 42, 0xF00D] {
        let oplog = random_oplog(seed, 40, 3, 0.3);
        for compress in [false, true] {
            for cache in [false, true] {
                frames.push(encode(
                    &oplog,
                    EncodeOpts {
                        compress_content: compress,
                        cache_final_doc: cache,
                        ..Default::default()
                    },
                ));
            }
        }
        let bundle = oplog.bundle_since(&[]);
        frames.push(encode_bundle(&bundle));
        frames.push(encode_bundle_batch(&[
            (seed, bundle.clone()),
            (seed + 1, bundle),
        ]));
        frames.push(encode_digest(&[(seed, oplog.remote_version())]));
        frames.push(segment_file(&oplog));
    }
    frames.push(encode_digest(&[]));
    frames
}

/// Applies one random mutation in place.
fn mutate(frame: &mut Vec<u8>, corpus: &[Vec<u8>], rng: &mut SmallRng) {
    match rng.below(6) {
        // Flip 1..8 random bits.
        0 => {
            for _ in 0..1 + rng.below(8) {
                if frame.is_empty() {
                    break;
                }
                let i = rng.below(frame.len());
                frame[i] ^= 1 << rng.below(8);
            }
        }
        // Overwrite a byte with a boundary value.
        1 => {
            if !frame.is_empty() {
                let i = rng.below(frame.len());
                frame[i] = [0x00, 0x7F, 0x80, 0xFF][rng.below(4)];
            }
        }
        // Truncate.
        2 => {
            let cut = rng.below(frame.len() + 1);
            frame.truncate(cut);
        }
        // Append garbage or duplicate a tail slice.
        3 => {
            let n = 1 + rng.below(16);
            for _ in 0..n {
                let b = (rng.next_u64() & 0xFF) as u8;
                frame.push(b);
            }
        }
        // Splice: replace a random span with a span from another frame
        // (crossover — carries valid-looking substructure into a valid
        // envelope).
        4 => {
            let donor = &corpus[rng.below(corpus.len())];
            if !frame.is_empty() && !donor.is_empty() {
                let at = rng.below(frame.len());
                let dlen = 1 + rng.below(donor.len().min(32));
                let dstart = rng.below(donor.len() - dlen + 1);
                let end = (at + dlen).min(frame.len());
                frame.splice(at..end, donor[dstart..dstart + dlen].iter().copied());
            }
        }
        // Nudge a byte up/down by one — the classic off-by-one for
        // length-prefixed formats.
        _ => {
            if !frame.is_empty() {
                let i = rng.below(frame.len());
                frame[i] = frame[i].wrapping_add(if rng.below(2) == 0 { 1 } else { 0xFF });
            }
        }
    }
}

/// Recomputes the CRC32 trailer over everything before it, so the mutant
/// passes the checksum and reaches the structural checks.
fn fixup_crc(frame: &mut [u8]) {
    if frame.len() < 4 {
        return;
    }
    let body = frame.len() - 4;
    let crc = crc32(&frame[..body]);
    frame[body..].copy_from_slice(&crc.to_le_bytes());
}

#[test]
#[ignore = "open-ended fuzz loop; run nightly / on demand with --ignored"]
fn decoders_never_panic_under_mutation() {
    let secs: u64 = std::env::var("EG_FUZZ_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let seed: u64 = std::env::var("EG_FUZZ_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xF422);
    let corpus = corpus();
    let mut rng = SmallRng::new(seed);
    let deadline = Instant::now() + Duration::from_secs(secs);
    let mut iters = 0u64;
    let mut mutant = Vec::new();
    while Instant::now() < deadline {
        // Batch the clock check; mutation rounds are sub-microsecond.
        for _ in 0..512 {
            mutant.clear();
            mutant.extend_from_slice(&corpus[rng.below(corpus.len())]);
            for _ in 0..1 + rng.below(3) {
                mutate(&mut mutant, &corpus, &mut rng);
            }
            if rng.below(2) == 0 {
                fixup_crc(&mut mutant);
            }
            // Every decoder sees every mutant regardless of magic: magic
            // dispatch itself is attack surface.
            let _ = decode(&mutant);
            let _ = decode_bundle(&mutant);
            let _ = decode_digest(&mutant);
            let _ = decode_bundle_batch(&mutant);
            let _ = decode_checkpoint(&mutant);
            let _ = decode_snapshot(&mutant);
            let _ = decode_oplog_image(&mutant);
            if let Ok((seg_frames, _)) = scan_frames(&mutant) {
                // Frames that survive the per-frame CRC (splices of valid
                // records, or fixed-up tails) exercise the record payload
                // decoders — the layer `DocStore::open` trusts not to
                // panic.
                for f in seg_frames {
                    match f.kind {
                        RECORD_EVENTS => {
                            let _ = decode_bundle(f.payload);
                        }
                        RECORD_CHECKPOINT => {
                            // Both depths: the owned decode and the lazy
                            // view with its per-section decoders (the
                            // path `DocStore::open` actually takes).
                            let _ = decode_checkpoint(f.payload);
                            if let Ok(view) = read_checkpoint(f.payload) {
                                for (agent, seq) in view.version_ids() {
                                    std::hint::black_box((agent.len(), seq));
                                }
                                if let Some(raw) = view.snapshot {
                                    let _ = decode_snapshot(raw);
                                }
                                if let Some(raw) = view.oplog_image {
                                    let _ = decode_oplog_image(raw);
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
            iters += 1;
        }
    }
    eprintln!("fuzz loop: {iters} mutants over {secs}s (seed {seed:#x}) — no panics");
}
