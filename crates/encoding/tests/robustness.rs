//! Robustness battery for the storage and wire codecs: every corruption
//! must surface as an error, never a panic or a silently wrong document.
//!
//! Besides the random-mutation fuzzing, a **stored regression corpus**
//! (`decoder_regression_corpus` below) pins the specific malformed frames
//! that slipped past earlier decoder revisions: overlong varints whose
//! high bits silently overflowed a `u64`, and CRC-valid frames whose
//! length fields overflow-panicked the arithmetic after the checksum had
//! already passed. Each entry is constructed deterministically so the
//! exact bytes survive in the repository history.

use eg_dag::RemoteId;
use eg_encoding::varint::push_usize;
use eg_encoding::{
    crc32, decode, decode_bundle, decode_bundle_batch, decode_digest, encode, encode_bundle,
    encode_bundle_batch, encode_digest, lz4, DecodeError, EncodeOpts,
};
use egwalker::testgen::random_oplog;
use egwalker::OpLog;
use proptest::prelude::*;

fn sample_oplog() -> OpLog {
    random_oplog(7, 50, 3, 0.3)
}

// ---------------------------------------------------------------------------
// Exhaustive single-byte corruption of the whole-file format.
// ---------------------------------------------------------------------------

#[test]
fn file_format_detects_every_single_byte_flip() {
    let oplog = sample_oplog();
    let bytes = encode(&oplog, EncodeOpts::default());
    for i in 0..bytes.len() {
        let mut corrupted = bytes.clone();
        corrupted[i] ^= 0x10;
        // Must not panic; CRC32 catches any single flip.
        assert!(
            decode(&corrupted).is_err(),
            "flip at byte {i}/{} went undetected",
            bytes.len()
        );
    }
}

#[test]
fn file_format_detects_every_truncation() {
    let oplog = sample_oplog();
    let bytes = encode(&oplog, EncodeOpts::default());
    for cut in 0..bytes.len() {
        assert!(decode(&bytes[..cut]).is_err(), "truncation at {cut}");
    }
}

#[test]
fn file_format_roundtrips_under_all_option_combinations() {
    let oplog = sample_oplog();
    let expected = oplog.checkout_tip().content.to_string();
    for compress in [false, true] {
        for keep_deleted in [false, true] {
            for cache in [false, true] {
                let opts = EncodeOpts {
                    compress_content: compress,
                    keep_deleted_content: keep_deleted,
                    cache_final_doc: cache,
                };
                let bytes = encode(&oplog, opts);
                let decoded = decode(&bytes).unwrap_or_else(|e| {
                    panic!("decode failed for {opts:?}: {e}");
                });
                assert_eq!(decoded.oplog.len(), oplog.len(), "{opts:?}");
                if keep_deleted {
                    // Full fidelity: replay must reproduce the document.
                    assert_eq!(
                        decoded.oplog.checkout_tip().content.to_string(),
                        expected,
                        "{opts:?}"
                    );
                }
                if cache {
                    assert_eq!(decoded.cached_doc.as_deref(), Some(expected.as_str()));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Random garbage must never panic any decoder.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn file_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = decode(&bytes);
    }

    #[test]
    fn bundle_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = decode_bundle(&bytes);
    }

    #[test]
    fn digest_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = decode_digest(&bytes);
    }

    #[test]
    fn bundle_batch_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = decode_bundle_batch(&bytes);
    }

    #[test]
    fn lz4_decompressor_never_panics(
        bytes in prop::collection::vec(any::<u8>(), 0..300),
        max in 0usize..4096,
    ) {
        let _ = lz4::decompress(&bytes, max);
    }

    /// LZ4 round-trips arbitrary binary data.
    #[test]
    fn lz4_roundtrip_random(bytes in prop::collection::vec(any::<u8>(), 0..2000)) {
        let packed = lz4::compress(&bytes);
        let unpacked = lz4::decompress(&packed, bytes.len().max(1)).unwrap();
        prop_assert_eq!(unpacked, bytes);
    }

    /// LZ4 round-trips highly repetitive data (the match-heavy path).
    #[test]
    fn lz4_roundtrip_repetitive(
        unit in prop::collection::vec(any::<u8>(), 1..8),
        reps in 1usize..200,
        tail in prop::collection::vec(any::<u8>(), 0..16),
    ) {
        let mut data: Vec<u8> = Vec::new();
        for _ in 0..reps {
            data.extend_from_slice(&unit);
        }
        data.extend_from_slice(&tail);
        let packed = lz4::compress(&data);
        let unpacked = lz4::decompress(&packed, data.len()).unwrap();
        prop_assert_eq!(unpacked, data);
    }

    /// Whole pipeline: random oplog → encode → decode → same document.
    #[test]
    fn encode_decode_replay_roundtrip(
        seed in 0u64..1_000_000,
        steps in 1usize..60,
        replicas in 1usize..4,
        merge_prob in 0.0f64..0.5,
    ) {
        let oplog = random_oplog(seed, steps, replicas, merge_prob);
        let bytes = encode(&oplog, EncodeOpts::default());
        let decoded = decode(&bytes).unwrap();
        prop_assert_eq!(
            decoded.oplog.checkout_tip().content.to_string(),
            oplog.checkout_tip().content.to_string()
        );
    }

    /// Bundle wire format: random oplog → bundle → encode → decode → apply.
    #[test]
    fn bundle_wire_roundtrip(
        seed in 0u64..1_000_000,
        steps in 1usize..50,
        replicas in 1usize..4,
        merge_prob in 0.0f64..0.5,
    ) {
        let oplog = random_oplog(seed, steps, replicas, merge_prob);
        let bundle = oplog.bundle_since(&[]);
        let wire = encode_bundle(&bundle);
        let decoded = decode_bundle(&wire).unwrap();
        prop_assert_eq!(&decoded, &bundle);
        let mut peer = OpLog::new();
        peer.apply_bundle(&decoded).unwrap();
        prop_assert_eq!(
            peer.checkout_tip().content.to_string(),
            oplog.checkout_tip().content.to_string()
        );
    }
}

// ---------------------------------------------------------------------------
// Stored regression corpus: deterministic malformed frames that earlier
// decoder revisions accepted (silently truncating overlong varints) or
// panicked on (length-field overflow after a valid CRC). CRCs are
// recomputed here so each input exercises the *structural* checks, not
// the checksum.
// ---------------------------------------------------------------------------

/// Frames `body` with the given magic, wire version 1, and a valid CRC32
/// trailer — the shape shared by `EGWD`, `EGWM`, and `EGWB`.
fn crafted_frame(magic: &[u8; 4], body: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(magic);
    out.push(1);
    out.extend_from_slice(body);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// A 10-byte varint whose final byte sets bit 64: earlier `read_u64`
/// revisions shifted the excess bits into oblivion and decoded `1`.
const OVERLONG_ONE: [u8; 10] = [0x81, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02];
/// A zero-extended (non-canonical) encoding of `0`.
const ZERO_EXTENDED_ZERO: [u8; 2] = [0x80, 0x00];

#[test]
fn corpus_overlong_varint_count_rejected() {
    // An EGWD digest whose doc count is the overflowing 10-byte form of 1,
    // followed by exactly the one document that count implies. The frame
    // CRC-validates; only varint strictness can reject it. The pre-fix
    // decoder accepted it wholesale.
    let mut body = Vec::new();
    push_usize(&mut body, 0); // no interned agents
    body.extend_from_slice(&OVERLONG_ONE); // doc count: "1", overflowing
    push_usize(&mut body, 5); // doc id
    push_usize(&mut body, 0); // no tips
    let frame = crafted_frame(b"EGWD", &body);
    assert_eq!(decode_digest(&frame), Err(DecodeError::Overlong));
}

#[test]
fn corpus_zero_extended_varint_rejected() {
    // Agent count written as the non-canonical [0x80, 0x00]: same value
    // space, different bytes — must not decode.
    let mut body = Vec::new();
    body.extend_from_slice(&ZERO_EXTENDED_ZERO); // agent count: "0"
    push_usize(&mut body, 0); // doc count
    let frame = crafted_frame(b"EGWD", &body);
    assert_eq!(decode_digest(&frame), Err(DecodeError::Overlong));
}

#[test]
fn corpus_bundle_loc_overflow_rejected() {
    // An EGWB run whose loc.start sits at usize::MAX with len 2: computing
    // the exclusive range end overflowed (a panic in debug builds) before
    // the checked_add guard.
    let mut body = Vec::new();
    push_usize(&mut body, 1); // one agent
    push_usize(&mut body, 1);
    body.push(b'a');
    push_usize(&mut body, 1); // one run
    push_usize(&mut body, 0); // agent index
    push_usize(&mut body, 0); // seq_start
    body.push(0); // flags: Ins, not fwd
    push_usize(&mut body, usize::MAX); // loc.start
    push_usize(&mut body, 2); // run length -> loc.end overflows
    push_usize(&mut body, 0); // no parents
    push_usize(&mut body, 2); // content bytes
    body.extend_from_slice(b"ab");
    let frame = crafted_frame(b"EGWB", &body);
    assert_eq!(decode_bundle(&frame), Err(DecodeError::Corrupt));
}

#[test]
fn corpus_inflated_counts_rejected_before_allocation() {
    // Claimed element counts far larger than the remaining input must be
    // rejected up front (no proportional allocation, no EOF crawl).
    let mut body = Vec::new();
    push_usize(&mut body, usize::MAX); // agent count
    let frame = crafted_frame(b"EGWD", &body);
    assert_eq!(decode_digest(&frame), Err(DecodeError::Corrupt));

    let mut body = Vec::new();
    push_usize(&mut body, usize::MAX); // doc count
    let frame = crafted_frame(b"EGWM", &body);
    assert_eq!(decode_bundle_batch(&frame), Err(DecodeError::Corrupt));
}

#[test]
fn corpus_zero_length_parents_span_rejected() {
    // Fuzz-loop find: a whole-file frame whose PARENTS column contains a
    // zero-length span record. The rebuild loop computed a zero chunk
    // length from it and fed an empty run into the oplog `add_*` path,
    // whose `len > 0` assertion panicked — a crash on attacker-controlled
    // bytes. The frame CRC-validates; only the span-length check can
    // reject it. (The op is an insert so the frame clears the position
    // prefix bound and actually reaches the parents column.)
    let mut body = Vec::new();
    body.extend_from_slice(b"EGWALKR1");
    push_usize(&mut body, 1); // one event
    let mut ops = Vec::new();
    push_usize(&mut ops, 1 << 2 | 0b01); // one insert, fwd
    push_usize(&mut ops, 0); // pos delta 0 (i64 zigzag of 0)
    push_chunk(&mut body, 1, &ops); // OPS
    let mut content = Vec::new();
    push_usize(&mut content, 1); // one content byte
    content.push(0); // uncompressed
    content.push(b'x');
    push_chunk(&mut body, 2, &content); // CONTENT
    let mut parents = Vec::new();
    push_usize(&mut parents, 0); // span length 0  << the corpus entry
    push_usize(&mut parents, 0); // no parents
    push_usize(&mut parents, 1); // span length 1 (the real event)
    push_usize(&mut parents, 0); // root
    push_chunk(&mut body, 3, &parents); // PARENTS
    let mut names = Vec::new();
    push_usize(&mut names, 1); // one agent
    push_usize(&mut names, 1);
    names.push(b'a');
    push_chunk(&mut body, 4, &names); // AGENT_NAMES
    let mut assign = Vec::new();
    push_usize(&mut assign, 0); // agent 0
    push_usize(&mut assign, 0); // seq 0
    push_usize(&mut assign, 1); // one event
    push_chunk(&mut body, 5, &assign); // AGENT_ASSIGNMENT
    let crc = crc32(&body);
    body.extend_from_slice(&crc.to_le_bytes());
    assert_eq!(decode(&body).err(), Some(DecodeError::Corrupt));
}

/// Mirror of `push_chunk` in `event_graph.rs` (not exported): tag byte,
/// payload length, payload.
fn push_chunk(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    push_usize(out, payload.len());
    out.extend_from_slice(payload);
}

#[test]
fn corpus_out_of_bounds_positions_rejected() {
    // A CRC-valid whole-file frame whose op *positions* are structurally
    // impossible: insert "ab", delete one character (document is now one
    // char), then insert at position 2. Every column is well-formed and
    // the position clears the naive "characters inserted so far" bound
    // (2 ≤ 2) — only the length-simulation replay sees that the live
    // document is too short. Pre-fix decoders accepted the file and the
    // panic surfaced later, inside checkout's rope apply.
    let mut body = Vec::new();
    body.extend_from_slice(b"EGWALKR1");
    push_usize(&mut body, 4); // four events
    let mut ops = Vec::new();
    push_usize(&mut ops, 2 << 2 | 0b01); // insert run, len 2, fwd
    push_usize(&mut ops, 0); // pos 0 (zigzag delta 0)
    push_usize(&mut ops, 1 << 2 | 0b11); // delete run, len 1, fwd
    push_usize(&mut ops, 0); // pos 0
    push_usize(&mut ops, 1 << 2 | 0b01); // insert run, len 1, fwd
    push_usize(&mut ops, 4); // pos 2 (zigzag delta +2)
    push_chunk(&mut body, 1, &ops); // OPS
    let mut content = Vec::new();
    push_usize(&mut content, 3); // three inserted chars
    content.push(0); // uncompressed
    content.extend_from_slice(b"abx");
    push_chunk(&mut body, 2, &content); // CONTENT
    let mut parents = Vec::new();
    push_usize(&mut parents, 4); // one linear run of all four events
    push_usize(&mut parents, 0); // rooted
    push_chunk(&mut body, 3, &parents); // PARENTS
    let mut names = Vec::new();
    push_usize(&mut names, 1); // one agent
    push_usize(&mut names, 1);
    names.push(b'a');
    push_chunk(&mut body, 4, &names); // AGENT_NAMES
    let mut assign = Vec::new();
    push_usize(&mut assign, 0); // agent 0
    push_usize(&mut assign, 0); // seq 0
    push_usize(&mut assign, 4); // all four events
    push_chunk(&mut body, 5, &assign); // AGENT_ASSIGNMENT
    let crc = crc32(&body);
    body.extend_from_slice(&crc.to_le_bytes());
    assert_eq!(decode(&body).err(), Some(DecodeError::Corrupt));

    // The wild-position variant (position beyond everything ever
    // inserted) dies at the cheap prefix bound instead.
    let mut body = Vec::new();
    body.extend_from_slice(b"EGWALKR1");
    push_usize(&mut body, 1); // one event
    let mut ops = Vec::new();
    push_usize(&mut ops, 1 << 2 | 0b01); // insert run, len 1, fwd
    push_usize(&mut ops, 2 * 1000); // pos 1000 on an empty document
    push_chunk(&mut body, 1, &ops);
    let mut content = Vec::new();
    push_usize(&mut content, 1);
    content.push(0);
    content.push(b'x');
    push_chunk(&mut body, 2, &content);
    let mut parents = Vec::new();
    push_usize(&mut parents, 1);
    push_usize(&mut parents, 0);
    push_chunk(&mut body, 3, &parents);
    let mut names = Vec::new();
    push_usize(&mut names, 1);
    push_usize(&mut names, 1);
    names.push(b'a');
    push_chunk(&mut body, 4, &names);
    let mut assign = Vec::new();
    push_usize(&mut assign, 0);
    push_usize(&mut assign, 0);
    push_usize(&mut assign, 1);
    push_chunk(&mut body, 5, &assign);
    let crc = crc32(&body);
    body.extend_from_slice(&crc.to_le_bytes());
    assert_eq!(decode(&body).err(), Some(DecodeError::Corrupt));
}

// ---------------------------------------------------------------------------
// Segment-store records (eg-storage) framed over this crate's codecs:
// arbitrary bytes must never panic the frame scanner or checkpoint codec.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn segment_frame_scanner_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = eg_storage::scan_frames(&bytes);
    }

    #[test]
    fn checkpoint_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = eg_storage::decode_checkpoint(&bytes);
    }
}

#[test]
fn corpus_truncated_frames_rejected() {
    // Every prefix of valid digest / bundle-batch frames must error; the
    // shortest interesting ones (inside the CRC trailer) are kept as
    // explicit corpus entries via the full sweep.
    let digest = encode_digest(&[(
        9,
        vec![RemoteId {
            agent: "corpus".into(),
            seq: 3,
        }],
    )]);
    for cut in 0..digest.len() {
        assert!(decode_digest(&digest[..cut]).is_err(), "cut {cut}");
    }
    let mut log = OpLog::new();
    let a = log.get_or_create_agent("corpus");
    log.add_insert(a, 0, "x");
    let batch = encode_bundle_batch(&[(0, log.bundle_since(&[]))]);
    for cut in 0..batch.len() {
        assert!(decode_bundle_batch(&batch[..cut]).is_err(), "cut {cut}");
    }
}

// ---------------------------------------------------------------------------
// Decompression bombs: the max_size bound is enforced.
// ---------------------------------------------------------------------------

#[test]
fn lz4_respects_max_size() {
    let data = vec![b'x'; 10_000];
    let packed = lz4::compress(&data);
    // Refusing to inflate past the declared bound.
    assert!(lz4::decompress(&packed, 100).is_err());
    assert_eq!(lz4::decompress(&packed, 10_000).unwrap(), data);
}
