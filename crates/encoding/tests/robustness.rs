//! Robustness battery for the storage and wire codecs: every corruption
//! must surface as an error, never a panic or a silently wrong document.

use eg_encoding::{decode, decode_bundle, encode, encode_bundle, lz4, EncodeOpts};
use egwalker::testgen::random_oplog;
use egwalker::OpLog;
use proptest::prelude::*;

fn sample_oplog() -> OpLog {
    random_oplog(7, 50, 3, 0.3)
}

// ---------------------------------------------------------------------------
// Exhaustive single-byte corruption of the whole-file format.
// ---------------------------------------------------------------------------

#[test]
fn file_format_detects_every_single_byte_flip() {
    let oplog = sample_oplog();
    let bytes = encode(&oplog, EncodeOpts::default());
    for i in 0..bytes.len() {
        let mut corrupted = bytes.clone();
        corrupted[i] ^= 0x10;
        // Must not panic; CRC32 catches any single flip.
        assert!(
            decode(&corrupted).is_err(),
            "flip at byte {i}/{} went undetected",
            bytes.len()
        );
    }
}

#[test]
fn file_format_detects_every_truncation() {
    let oplog = sample_oplog();
    let bytes = encode(&oplog, EncodeOpts::default());
    for cut in 0..bytes.len() {
        assert!(decode(&bytes[..cut]).is_err(), "truncation at {cut}");
    }
}

#[test]
fn file_format_roundtrips_under_all_option_combinations() {
    let oplog = sample_oplog();
    let expected = oplog.checkout_tip().content.to_string();
    for compress in [false, true] {
        for keep_deleted in [false, true] {
            for cache in [false, true] {
                let opts = EncodeOpts {
                    compress_content: compress,
                    keep_deleted_content: keep_deleted,
                    cache_final_doc: cache,
                };
                let bytes = encode(&oplog, opts);
                let decoded = decode(&bytes).unwrap_or_else(|e| {
                    panic!("decode failed for {opts:?}: {e}");
                });
                assert_eq!(decoded.oplog.len(), oplog.len(), "{opts:?}");
                if keep_deleted {
                    // Full fidelity: replay must reproduce the document.
                    assert_eq!(
                        decoded.oplog.checkout_tip().content.to_string(),
                        expected,
                        "{opts:?}"
                    );
                }
                if cache {
                    assert_eq!(decoded.cached_doc.as_deref(), Some(expected.as_str()));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Random garbage must never panic any decoder.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn file_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = decode(&bytes);
    }

    #[test]
    fn bundle_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = decode_bundle(&bytes);
    }

    #[test]
    fn lz4_decompressor_never_panics(
        bytes in prop::collection::vec(any::<u8>(), 0..300),
        max in 0usize..4096,
    ) {
        let _ = lz4::decompress(&bytes, max);
    }

    /// LZ4 round-trips arbitrary binary data.
    #[test]
    fn lz4_roundtrip_random(bytes in prop::collection::vec(any::<u8>(), 0..2000)) {
        let packed = lz4::compress(&bytes);
        let unpacked = lz4::decompress(&packed, bytes.len().max(1)).unwrap();
        prop_assert_eq!(unpacked, bytes);
    }

    /// LZ4 round-trips highly repetitive data (the match-heavy path).
    #[test]
    fn lz4_roundtrip_repetitive(
        unit in prop::collection::vec(any::<u8>(), 1..8),
        reps in 1usize..200,
        tail in prop::collection::vec(any::<u8>(), 0..16),
    ) {
        let mut data: Vec<u8> = Vec::new();
        for _ in 0..reps {
            data.extend_from_slice(&unit);
        }
        data.extend_from_slice(&tail);
        let packed = lz4::compress(&data);
        let unpacked = lz4::decompress(&packed, data.len()).unwrap();
        prop_assert_eq!(unpacked, data);
    }

    /// Whole pipeline: random oplog → encode → decode → same document.
    #[test]
    fn encode_decode_replay_roundtrip(
        seed in 0u64..1_000_000,
        steps in 1usize..60,
        replicas in 1usize..4,
        merge_prob in 0.0f64..0.5,
    ) {
        let oplog = random_oplog(seed, steps, replicas, merge_prob);
        let bytes = encode(&oplog, EncodeOpts::default());
        let decoded = decode(&bytes).unwrap();
        prop_assert_eq!(
            decoded.oplog.checkout_tip().content.to_string(),
            oplog.checkout_tip().content.to_string()
        );
    }

    /// Bundle wire format: random oplog → bundle → encode → decode → apply.
    #[test]
    fn bundle_wire_roundtrip(
        seed in 0u64..1_000_000,
        steps in 1usize..50,
        replicas in 1usize..4,
        merge_prob in 0.0f64..0.5,
    ) {
        let oplog = random_oplog(seed, steps, replicas, merge_prob);
        let bundle = oplog.bundle_since(&[]);
        let wire = encode_bundle(&bundle);
        let decoded = decode_bundle(&wire).unwrap();
        prop_assert_eq!(&decoded, &bundle);
        let mut peer = OpLog::new();
        peer.apply_bundle(&decoded).unwrap();
        prop_assert_eq!(
            peer.checkout_tip().content.to_string(),
            oplog.checkout_tip().content.to_string()
        );
    }
}

// ---------------------------------------------------------------------------
// Decompression bombs: the max_size bound is enforced.
// ---------------------------------------------------------------------------

#[test]
fn lz4_respects_max_size() {
    let data = vec![b'x'; 10_000];
    let packed = lz4::compress(&data);
    // Refusing to inflate past the declared bound.
    assert!(lz4::decompress(&packed, 100).is_err());
    assert_eq!(lz4::decompress(&packed, 10_000).unwrap(), data);
}
