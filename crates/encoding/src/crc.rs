//! CRC32 (IEEE 802.3) for file integrity checks.
//!
//! Slicing-by-8: eight const-built tables let the hot loop fold eight
//! bytes per step instead of one bit at a time. Segment-store opens CRC
//! every byte of a document's history twice (frame trailer + bundle
//! trailer), so this sits directly on the cached-load fast path.

/// `TABLES[0]` is the classic byte-at-a-time table; `TABLES[k]` maps a
/// byte to its CRC contribution from `k` positions earlier in the
/// 8-byte block.
static TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            j += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

/// Computes the CRC32 of `data` (IEEE polynomial, as used by gzip/zip).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let &[b0, b1, b2, b3, b4, b5, b6, b7] = c else {
            break; // chunks_exact(8) only yields 8-byte slices
        };
        let lo = crc ^ u32::from_le_bytes([b0, b1, b2, b3]);
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][b4 as usize]
            ^ TABLES[2][b5 as usize]
            ^ TABLES[1][b6 as usize]
            ^ TABLES[0][b7 as usize];
    }
    for &byte in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

/// Splits a frame into its body and the trailing little-endian CRC32,
/// or `None` when `bytes` is too short to hold the 4-byte trailer.
///
/// Every trailing-checksum codec (bundles, digests, event-graph files)
/// shares this split so their decode paths stay free of raw slicing.
pub fn split_crc(bytes: &[u8]) -> Option<(&[u8], u32)> {
    let split = bytes.len().checked_sub(4)?;
    let body = bytes.get(..split)?;
    let tail: [u8; 4] = bytes.get(split..)?.try_into().ok()?;
    Some((body, u32::from_le_bytes(tail)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_change() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worlc");
        assert_ne!(a, b);
    }

    #[test]
    fn matches_bitwise_reference() {
        // The sliced loop must agree with the definitional bit-at-a-time
        // version at every length, covering all remainder paths.
        fn reference(data: &[u8]) -> u32 {
            let mut crc = 0xFFFF_FFFFu32;
            for &byte in data {
                crc ^= byte as u32;
                for _ in 0..8 {
                    let mask = (crc & 1).wrapping_neg();
                    crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
                }
            }
            !crc
        }
        let data: Vec<u8> = (0..257u32)
            .map(|i| (i.wrapping_mul(37) >> 2) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "len {len}");
        }
    }
}
