//! CRC32 (IEEE 802.3) for file integrity checks.

/// Computes the CRC32 of `data` (IEEE polynomial, as used by gzip/zip).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_change() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worlc");
        assert_ne!(a, b);
    }
}
