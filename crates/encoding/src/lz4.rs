//! A from-scratch implementation of the LZ4 block format.
//!
//! The paper's implementation LZ4-compresses the inserted-content column
//! (§3.8; compression is disabled for the size comparisons of §4.5). No
//! LZ4 crate is available in this build environment, so this is a clean
//! implementation of the documented block format: a greedy hash-table
//! compressor and a decompressor. Round-trip compatibility with the
//! reference format is maintained (sequences of literal-length/match
//! tokens, little-endian match offsets, minimum match length 4, and the
//! end-of-block conditions).

/// Minimum match length the format can express.
const MIN_MATCH: usize = 4;
/// The last match must start at least this far from the end.
const LAST_LITERALS: usize = 5;
/// Matches may not start within this margin of the input end.
const MF_LIMIT: usize = 12;

/// Compresses `input` into an LZ4 block.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let n = input.len();
    if n == 0 {
        return out;
    }
    // Hash table of positions of 4-byte sequences.
    const HASH_BITS: usize = 14;
    let mut table = vec![0usize; 1 << HASH_BITS]; // 0 = unset (pos+1 stored)
    let hash = |word: u32| -> usize {
        ((word.wrapping_mul(2654435761)) >> (32 - HASH_BITS as u32)) as usize
    };
    let read_u32 = |pos: usize| -> u32 {
        u32::from_le_bytes([input[pos], input[pos + 1], input[pos + 2], input[pos + 3]])
    };

    let mut anchor = 0usize; // Start of pending literals.
    let mut pos = 0usize;
    while n >= MF_LIMIT && pos + MF_LIMIT <= n {
        // Find a match.
        let word = read_u32(pos);
        let h = hash(word);
        let candidate = table[h];
        table[h] = pos + 1;
        let matched = candidate != 0 && {
            let cpos = candidate - 1;
            pos - cpos <= 0xFFFF && read_u32(cpos) == word
        };
        if !matched {
            pos += 1;
            continue;
        }
        let cpos = candidate - 1;
        // Extend the match forward (leave room for last literals).
        let mut match_len = MIN_MATCH;
        let limit = n - LAST_LITERALS;
        while pos + match_len < limit && input[cpos + match_len] == input[pos + match_len] {
            match_len += 1;
        }
        // Emit token: literals since anchor + the match.
        let lit_len = pos - anchor;
        let offset = (pos - cpos) as u16;
        emit_sequence(&mut out, &input[anchor..pos], lit_len, offset, match_len);
        pos += match_len;
        anchor = pos;
    }
    // Trailing literals.
    let lit = &input[anchor..];
    emit_last_literals(&mut out, lit);
    out
}

fn emit_sequence(
    out: &mut Vec<u8>,
    literals: &[u8],
    lit_len: usize,
    offset: u16,
    match_len: usize,
) {
    let ml = match_len - MIN_MATCH;
    let token = (lit_len.min(15) as u8) << 4 | (ml.min(15) as u8);
    out.push(token);
    if lit_len >= 15 {
        push_length(out, lit_len - 15);
    }
    out.extend_from_slice(literals);
    out.extend_from_slice(&offset.to_le_bytes());
    if ml >= 15 {
        push_length(out, ml - 15);
    }
}

fn emit_last_literals(out: &mut Vec<u8>, literals: &[u8]) {
    let lit_len = literals.len();
    let token = (lit_len.min(15) as u8) << 4;
    out.push(token);
    if lit_len >= 15 {
        push_length(out, lit_len - 15);
    }
    out.extend_from_slice(literals);
}

fn push_length(out: &mut Vec<u8>, mut rest: usize) {
    while rest >= 255 {
        out.push(255);
        rest -= 255;
    }
    out.push(rest as u8);
}

/// Decompresses an LZ4 block. `max_size` bounds the output (protects
/// against corrupt input).
pub fn decompress(mut input: &[u8], max_size: usize) -> Result<Vec<u8>, &'static str> {
    let mut out: Vec<u8> = Vec::new();
    if input.is_empty() {
        return Ok(out);
    }
    loop {
        let (&token, rest) = input.split_first().ok_or("truncated token")?;
        input = rest;
        // Literals.
        let mut lit_len = (token >> 4) as usize;
        if lit_len == 15 {
            lit_len += read_length(&mut input)?;
        }
        let lit = input.get(..lit_len).ok_or("truncated literals")?;
        let new_len = out
            .len()
            .checked_add(lit_len)
            .ok_or("output exceeds declared size")?;
        if new_len > max_size {
            return Err("output exceeds declared size");
        }
        out.extend_from_slice(lit);
        input = input.get(lit_len..).unwrap_or(&[]);
        if input.is_empty() {
            return Ok(out); // End of block after literals.
        }
        // Match.
        let &[o0, o1, ref rest @ ..] = input else {
            return Err("truncated offset");
        };
        let offset = u16::from_le_bytes([o0, o1]) as usize;
        input = rest;
        if offset == 0 || offset > out.len() {
            return Err("bad match offset");
        }
        let mut match_len = (token & 0x0f) as usize;
        if match_len == 15 {
            match_len = match_len
                .checked_add(read_length(&mut input)?)
                .ok_or("output exceeds declared size")?;
        }
        match_len = match_len
            .checked_add(MIN_MATCH)
            .ok_or("output exceeds declared size")?;
        let new_len = out
            .len()
            .checked_add(match_len)
            .ok_or("output exceeds declared size")?;
        if new_len > max_size {
            return Err("output exceeds declared size");
        }
        // Overlapping copy, byte by byte: `offset` stays fixed while the
        // buffer grows, so `len - offset` always names the next source
        // byte (offset <= out.len() was checked above).
        for _ in 0..match_len {
            let Some(&b) = out.get(out.len() - offset) else {
                return Err("bad match offset");
            };
            out.push(b);
        }
    }
}

fn read_length(input: &mut &[u8]) -> Result<usize, &'static str> {
    let mut total = 0usize;
    loop {
        let (&b, rest) = input.split_first().ok_or("truncated length")?;
        *input = rest;
        total += b as usize;
        if b != 255 {
            return Ok(total);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let compressed = compress(data);
        let back = decompress(&compressed, data.len()).expect("decompress");
        assert_eq!(back, data);
    }

    #[test]
    fn empty() {
        roundtrip(b"");
    }

    #[test]
    fn short_incompressible() {
        roundtrip(b"abc");
        roundtrip(b"abcdefghijk");
    }

    #[test]
    fn repetitive_compresses() {
        let data = b"the quick brown fox the quick brown fox the quick brown fox jumps!".repeat(20);
        let compressed = compress(&data);
        assert!(
            compressed.len() < data.len() / 2,
            "expected compression: {} vs {}",
            compressed.len(),
            data.len()
        );
        roundtrip(&data);
    }

    #[test]
    fn long_runs() {
        let data = vec![7u8; 10_000];
        let compressed = compress(&data);
        assert!(compressed.len() < 100);
        roundtrip(&data);
    }

    #[test]
    fn text_roundtrip() {
        let text = "Lorem ipsum dolor sit amet, consectetur adipiscing elit. ".repeat(50);
        roundtrip(text.as_bytes());
    }

    #[test]
    fn random_data_roundtrip() {
        let mut seed = 12345u64;
        let mut data = Vec::new();
        for _ in 0..5000 {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            data.push((seed % 7) as u8 * 13); // Semi-repetitive.
        }
        roundtrip(&data);
    }

    #[test]
    fn corrupt_input_rejected() {
        // A match offset pointing before the start of output.
        let bad = vec![0x01, b'x', 0x10, 0x00];
        assert!(decompress(&bad, 1000).is_err());
        // Truncated.
        assert!(decompress(&[0xF0], 1000).is_err());
    }
}
