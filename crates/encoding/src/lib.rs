//! Column-oriented binary storage for event graphs (paper §3.8, §4.5).
//!
//! Eg-walker persists the *event graph*, not CRDT state. This crate
//! implements the paper's storage design — property columns over
//! topologically sorted events, run-length encoded, with variable-length
//! integers, an optional cached copy of the final document (for instant
//! loads), optional LZ4 compression of text columns, and CRC-protected
//! framing — plus the comparison encodings used by the evaluation's
//! file-size figures.
//!
//! # Examples
//!
//! ```
//! use eg_encoding::{decode, encode, EncodeOpts};
//! use egwalker::OpLog;
//!
//! let mut oplog = OpLog::new();
//! let a = oplog.get_or_create_agent("alice");
//! oplog.add_insert(a, 0, "hello");
//! let bytes = encode(&oplog, EncodeOpts::default());
//! let decoded = decode(&bytes).unwrap();
//! assert_eq!(decoded.oplog.checkout_tip().content.to_string(), "hello");
//! ```

mod bundle_wire;
mod comparisons;
mod crc;
mod digest_wire;
mod event_graph;
pub mod lz4;
mod oplog_image;
pub mod varint;

pub use bundle_wire::{apply_bundle_bytes, decode_bundle, encode_bundle, ApplyBundleError};
pub use comparisons::{encode_crdt_state, encode_verbose, verbose_event_count};
pub use crc::crc32;
pub use digest_wire::{
    decode_bundle_batch, decode_digest, encode_bundle_batch, encode_digest, BUNDLE_BATCH_MAGIC,
    DIGEST_MAGIC,
};
pub use event_graph::{decode, decode_cached_doc_only, encode, Decoded, EncodeOpts};
pub use oplog_image::{decode_oplog_image, encode_oplog_image, IMAGE_MAGIC};
pub use varint::DecodeError;
