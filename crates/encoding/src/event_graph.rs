//! The column-oriented binary format for event graphs (paper §3.8).
//!
//! Events are stored in LV (topological) order, with each property in its
//! own column:
//!
//! 1. **Ops**: run-length encoded `(kind, direction, length, start
//!    position)` tuples with zigzag-delta positions;
//! 2. **Content**: the UTF-8 concatenation of inserted text (optionally
//!    only the characters that survive to the final document, optionally
//!    LZ4-compressed);
//! 3. **Parents**: one entry per linear run — implicit "previous event"
//!    parents cost nothing;
//! 4. **Agents**: the interned names plus RLE `(agent, seq)` assignments;
//! 5. optionally a **cached final document** so loads need no replay
//!    (paper §4.3: Eg-walker loads "essentially a plain text file").
//!
//! The container is `EGWALKR1` + type-tagged chunks + a trailing CRC32.

use crate::crc::{crc32, split_crc};
use crate::lz4;
use crate::varint::{push_i64, push_usize, read_i64, read_usize, take, DecodeError};
use eg_rle::{DTRange, HasLength};
use egwalker::convert::{to_crdt_ops, CrdtOp};
use egwalker::walker::events_apply_cleanly;
use egwalker::{ListOpKind, OpLog};

/// File magic.
const MAGIC: &[u8; 8] = b"EGWALKR1";

/// Chunk type tags.
mod chunk {
    pub const OPS: u8 = 1;
    pub const CONTENT: u8 = 2;
    pub const PARENTS: u8 = 3;
    pub const AGENT_NAMES: u8 = 4;
    pub const AGENT_ASSIGNMENT: u8 = 5;
    pub const FINAL_DOC: u8 = 6;
}

/// Encoding options.
#[derive(Debug, Clone, Copy)]
pub struct EncodeOpts {
    /// LZ4-compress the content (and cached document) columns. The paper
    /// disables this for its file-size comparisons (§4.5).
    pub compress_content: bool,
    /// Store the content of deleted characters. Disabling this mimics
    /// Yjs-style storage (paper Fig. 12) and makes the file lossy for
    /// history purposes.
    pub keep_deleted_content: bool,
    /// Append a cached copy of the final document, so opening the file
    /// needs no replay (paper Fig. 11 "+ cached final doc").
    pub cache_final_doc: bool,
}

impl Default for EncodeOpts {
    fn default() -> Self {
        EncodeOpts {
            compress_content: false,
            keep_deleted_content: true,
            cache_final_doc: false,
        }
    }
}

fn push_chunk(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    push_usize(out, payload.len());
    out.extend_from_slice(payload);
}

/// Computes the set of insert events whose characters survive in the final
/// document (needed when deleted content is omitted).
fn surviving_inserts(oplog: &OpLog) -> Vec<DTRange> {
    let mut deleted: Vec<DTRange> = Vec::new();
    for op in to_crdt_ops(oplog) {
        if let CrdtOp::Del { target } = op {
            deleted.push(target);
        }
    }
    deleted.sort_unstable();
    // Merge overlapping ranges (double deletes target the same chars).
    let mut merged: Vec<DTRange> = Vec::new();
    for r in deleted {
        if let Some(last) = merged.last_mut() {
            if r.start <= last.end {
                last.end = last.end.max(r.end);
                continue;
            }
        }
        merged.push(r);
    }
    // Complement over [0, len).
    let mut out = Vec::new();
    let mut at = 0usize;
    for r in merged {
        if r.start > at {
            out.push((at..r.start).into());
        }
        at = at.max(r.end);
    }
    if at < oplog.len() {
        out.push((at..oplog.len()).into());
    }
    out
}

/// Serialises an oplog.
pub fn encode(oplog: &OpLog, opts: EncodeOpts) -> Vec<u8> {
    let n = oplog.len();

    // Column 1: ops.
    let mut ops_col = Vec::new();
    let mut prev_pos = 0i64;
    if n > 0 {
        for (lvs, run) in oplog.ops_in((0..n).into()) {
            let kind_bit = match run.kind {
                ListOpKind::Ins => 0usize,
                ListOpKind::Del => 1usize,
            };
            let fwd_bit = if run.fwd { 1usize } else { 0usize };
            push_usize(&mut ops_col, lvs.len() << 2 | kind_bit << 1 | fwd_bit);
            push_i64(&mut ops_col, run.loc.start as i64 - prev_pos);
            prev_pos = run.loc.start as i64;
        }
    }

    // Column 2: content.
    let survivors = if opts.keep_deleted_content {
        vec![DTRange::from(0..n)]
    } else {
        surviving_inserts(oplog)
    };
    let mut content = String::new();
    if n > 0 {
        let mut si = 0usize;
        for (lvs, run) in oplog.ops_in((0..n).into()) {
            if let Some(c) = run.content {
                // Emit only the surviving sub-ranges of this insert run.
                while si < survivors.len() && survivors[si].end <= lvs.start {
                    si += 1;
                }
                let mut k = si;
                while k < survivors.len() && survivors[k].start < lvs.end {
                    let s = survivors[k].start.max(lvs.start);
                    let e = survivors[k].end.min(lvs.end);
                    let cs = c.start + (s - lvs.start);
                    content.push_str(oplog.content_slice((cs..cs + (e - s)).into()));
                    k += 1;
                }
            }
        }
    }
    let content_bytes = content.into_bytes();
    let mut content_col = Vec::new();
    push_usize(&mut content_col, content_bytes.len());
    content_col.push(opts.compress_content as u8);
    if opts.compress_content {
        content_col.extend_from_slice(&lz4::compress(&content_bytes));
    } else {
        content_col.extend_from_slice(&content_bytes);
    }

    // Column 3: parents (one record per graph run).
    let mut parents_col = Vec::new();
    for entry in oplog.graph.iter() {
        push_usize(&mut parents_col, entry.span.len());
        push_usize(&mut parents_col, entry.parents.len());
        for &p in entry.parents.iter() {
            // Parents always precede; store the (small) backward distance.
            push_usize(&mut parents_col, entry.span.start - p);
        }
    }

    // Column 4: agent names.
    let mut names_col = Vec::new();
    push_usize(&mut names_col, oplog.agents.num_agents());
    for i in 0..oplog.agents.num_agents() {
        let name = oplog.agents.agent_name(i as u32);
        push_usize(&mut names_col, name.len());
        names_col.extend_from_slice(name.as_bytes());
    }

    // Column 5: agent assignment runs.
    let mut assign_col = Vec::new();
    for pair in oplog.agents.iter_lv_map() {
        push_usize(&mut assign_col, pair.1.agent as usize);
        push_usize(&mut assign_col, pair.1.seq_range.start);
        push_usize(&mut assign_col, pair.1.seq_range.len());
    }

    // Assemble.
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    push_usize(&mut out, n);
    push_chunk(&mut out, chunk::OPS, &ops_col);
    push_chunk(&mut out, chunk::CONTENT, &content_col);
    push_chunk(&mut out, chunk::PARENTS, &parents_col);
    push_chunk(&mut out, chunk::AGENT_NAMES, &names_col);
    push_chunk(&mut out, chunk::AGENT_ASSIGNMENT, &assign_col);
    if opts.cache_final_doc {
        let doc = oplog.checkout_tip().content.to_string();
        let bytes = doc.into_bytes();
        let mut doc_col = Vec::new();
        push_usize(&mut doc_col, bytes.len());
        doc_col.push(opts.compress_content as u8);
        if opts.compress_content {
            doc_col.extend_from_slice(&lz4::compress(&bytes));
        } else {
            doc_col.extend_from_slice(&bytes);
        }
        push_chunk(&mut out, chunk::FINAL_DOC, &doc_col);
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// The result of decoding a file.
#[derive(Debug)]
pub struct Decoded {
    /// The reconstructed oplog. When the file omitted deleted content, the
    /// missing characters read as `\u{FFFD}`.
    pub oplog: OpLog,
    /// The cached final document, if the file carried one.
    pub cached_doc: Option<String>,
}

/// Reads the cached final document *only* — the fast-load path (paper
/// §4.3: loading is "essentially a plain text file" read).
pub fn decode_cached_doc_only(data: &[u8]) -> Result<Option<String>, DecodeError> {
    let (chunks, _) = split_chunks(data)?;
    for (tag, payload) in chunks {
        if tag == chunk::FINAL_DOC {
            return Ok(Some(read_text_block(payload)?));
        }
    }
    Ok(None)
}

fn read_text_block(mut payload: &[u8]) -> Result<String, DecodeError> {
    let raw_len = read_usize(&mut payload)?;
    let (&compressed, rest) = payload.split_first().ok_or(DecodeError::UnexpectedEof)?;
    let bytes = if compressed == 1 {
        lz4::decompress(rest, raw_len).map_err(|_| DecodeError::Corrupt)?
    } else {
        rest.to_vec()
    };
    String::from_utf8(bytes).map_err(|_| DecodeError::BadUtf8)
}

#[allow(clippy::type_complexity)]
fn split_chunks(data: &[u8]) -> Result<(Vec<(u8, &[u8])>, usize), DecodeError> {
    let (body, stored_crc) = split_crc(data).ok_or(DecodeError::BadMagic)?;
    let mut cursor = body;
    if take(&mut cursor, MAGIC.len()).map_err(|_| DecodeError::BadMagic)? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    if crc32(body) != stored_crc {
        return Err(DecodeError::Corrupt);
    }
    let n = read_usize(&mut cursor)?;
    let mut chunks = Vec::new();
    while !cursor.is_empty() {
        let (&tag, rest) = cursor.split_first().ok_or(DecodeError::UnexpectedEof)?;
        cursor = rest;
        let len = read_usize(&mut cursor)?;
        chunks.push((tag, take(&mut cursor, len)?));
    }
    Ok((chunks, n))
}

/// Deserialises a file produced by [`encode`].
pub fn decode(data: &[u8]) -> Result<Decoded, DecodeError> {
    let (chunks, n) = split_chunks(data)?;
    let get = |tag: u8| -> Result<&[u8], DecodeError> {
        chunks
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, p)| *p)
            .ok_or(DecodeError::Corrupt)
    };

    // Agent names.
    let mut names_cur = get(chunk::AGENT_NAMES)?;
    let num_agents = read_usize(&mut names_cur)?;
    // Each agent record takes at least one byte; a larger claimed count is
    // corrupt, and must be rejected *before* sizing the allocation.
    if num_agents > names_cur.len() {
        return Err(DecodeError::Corrupt);
    }
    let mut oplog = OpLog::new();
    let mut agents = Vec::with_capacity(num_agents);
    for _ in 0..num_agents {
        let len = read_usize(&mut names_cur)?;
        let raw = take(&mut names_cur, len)?;
        let name = std::str::from_utf8(raw).map_err(|_| DecodeError::BadUtf8)?;
        agents.push(oplog.get_or_create_agent(name));
    }

    // Ops.
    #[derive(Debug)]
    struct OpRec {
        len: usize,
        kind: ListOpKind,
        fwd: bool,
        pos: usize,
    }
    let mut ops = Vec::new();
    let mut ops_cur = get(chunk::OPS)?;
    let mut prev_pos = 0i64;
    let mut total = 0usize;
    let mut inserts = 0usize;
    while total < n {
        let head = read_usize(&mut ops_cur)?;
        let len = head >> 2;
        let kind = if head & 0b10 != 0 {
            ListOpKind::Del
        } else {
            ListOpKind::Ins
        };
        let fwd = head & 1 != 0;
        let pos = prev_pos
            .checked_add(read_i64(&mut ops_cur)?)
            .ok_or(DecodeError::Corrupt)?;
        if pos < 0 || len == 0 {
            return Err(DecodeError::Corrupt);
        }
        // `pos + len` must not overflow: backward-delete rebuild computes
        // `pos + len - 1`, and a wrap there turns a corrupt file into an
        // assertion failure inside `add_backspace_at` (fuzz-found).
        let op_end = (pos as usize)
            .checked_add(len)
            .ok_or(DecodeError::Corrupt)?;
        // Structural position bound: events are in topological order, so an
        // op can never address past the characters all earlier events could
        // have inserted. Catches wild positions cheaply; the exact check is
        // the length-simulation replay after the rebuild.
        let bound = match kind {
            ListOpKind::Ins => pos as usize,
            ListOpKind::Del => op_end,
        };
        if bound > inserts {
            return Err(DecodeError::Corrupt);
        }
        if kind == ListOpKind::Ins {
            inserts += len;
        }
        prev_pos = pos;
        ops.push(OpRec {
            len,
            kind,
            fwd,
            pos: pos as usize,
        });
        total = total.checked_add(len).ok_or(DecodeError::Corrupt)?;
    }
    if total != n {
        return Err(DecodeError::Corrupt);
    }

    // Content.
    let content_text = read_text_block(get(chunk::CONTENT)?)?;
    let mut content_chars = content_text.chars();

    // Parents.
    let mut parents_runs: Vec<(usize, Vec<usize>)> = Vec::new();
    let mut parents_cur = get(chunk::PARENTS)?;
    let mut covered = 0usize;
    while covered < n {
        let span_len = read_usize(&mut parents_cur)?;
        // A zero-length span would make the rebuild below emit an empty
        // run (`add_*` asserts) or spin without advancing (fuzz-found).
        if span_len == 0 {
            return Err(DecodeError::Corrupt);
        }
        let pcount = read_usize(&mut parents_cur)?;
        // Each parent takes at least one byte: reject inflated counts
        // before allocating.
        if pcount > parents_cur.len() {
            return Err(DecodeError::Corrupt);
        }
        let mut parents = Vec::with_capacity(pcount);
        for _ in 0..pcount {
            let back = read_usize(&mut parents_cur)?;
            if back == 0 || back > covered {
                return Err(DecodeError::Corrupt);
            }
            parents.push(covered - back);
        }
        parents_runs.push((span_len, parents));
        covered = covered.checked_add(span_len).ok_or(DecodeError::Corrupt)?;
    }
    if covered != n {
        return Err(DecodeError::Corrupt);
    }

    // Agent assignments.
    let mut assigns: Vec<(usize, usize, usize)> = Vec::new();
    let mut assign_cur = get(chunk::AGENT_ASSIGNMENT)?;
    let mut assigned = 0usize;
    while assigned < n {
        let agent = read_usize(&mut assign_cur)?;
        let seq_start = read_usize(&mut assign_cur)?;
        let len = read_usize(&mut assign_cur)?;
        if agent >= num_agents || len == 0 {
            return Err(DecodeError::Corrupt);
        }
        assigns.push((agent, seq_start, len));
        assigned = assigned.checked_add(len).ok_or(DecodeError::Corrupt)?;
    }
    if assigned != n {
        return Err(DecodeError::Corrupt);
    }

    // Rebuild the oplog: walk the three RLE streams in parallel, emitting
    // the finest-grained runs.
    let mut op_i = 0usize;
    let mut op_off = 0usize;
    let mut par_i = 0usize;
    let mut par_off = 0usize;
    let mut asn_i = 0usize;
    let mut asn_off = 0usize;
    let mut lv = 0usize;
    // Remaining surviving-content length mapping is implicit: inserts pull
    // chars in order; files with omitted deleted content substitute
    // replacement characters once the stream dries up.
    while lv < n {
        let op = ops.get(op_i).ok_or(DecodeError::Corrupt)?;
        let (plen, parents) = parents_runs.get(par_i).ok_or(DecodeError::Corrupt)?;
        let &(agent, seq_start, alen) = assigns.get(asn_i).ok_or(DecodeError::Corrupt)?;
        let &agent_id = agents.get(agent).ok_or(DecodeError::Corrupt)?;
        let chunk_len = (op.len - op_off).min(plen - par_off).min(alen - asn_off);
        // All three streams were validated non-degenerate above; a zero
        // chunk would emit an empty run or stall the loop. Belt and
        // braces for whatever corruption shape gets past those checks.
        if chunk_len == 0 {
            return Err(DecodeError::Corrupt);
        }
        let parents_here: Vec<usize> = if par_off == 0 {
            parents.clone()
        } else {
            vec![lv - 1]
        };
        match op.kind {
            ListOpKind::Ins => {
                let text: String = (0..chunk_len)
                    .map(|_| content_chars.next().unwrap_or('\u{FFFD}'))
                    .collect();
                let pos = op.pos + op_off;
                oplog.add_insert_at(agent_id, &parents_here, pos, &text);
            }
            ListOpKind::Del => {
                if op.fwd {
                    oplog.add_delete_at(agent_id, &parents_here, op.pos, chunk_len);
                } else {
                    // Backward runs: this chunk deletes the top of the
                    // remaining range. `pos + len` was overflow-checked
                    // at parse time, and `op_off < len`.
                    let op_end = op.pos.checked_add(op.len).ok_or(DecodeError::Corrupt)?;
                    let top = op_end - 1 - op_off;
                    oplog.add_backspace_at(agent_id, &parents_here, top, chunk_len);
                }
            }
        }
        // Verify the agent assignment matches what add_* allocated.
        let expect_seq = seq_start + asn_off;
        let got = oplog.agents.lv_to_agent_span(lv);
        if got.agent != agent_id || got.seq_range.start != expect_seq {
            return Err(DecodeError::Corrupt);
        }
        lv += chunk_len;
        op_off += chunk_len;
        if op_off == op.len {
            op_i += 1;
            op_off = 0;
        }
        par_off += chunk_len;
        if par_off == *plen {
            par_i += 1;
            par_off = 0;
        }
        asn_off += chunk_len;
        if asn_off == alen {
            asn_i += 1;
            asn_off = 0;
        }
    }

    // Exact structural-position validation: the file can be well-formed in
    // every column and still carry positions that address characters which
    // don't exist at the op's version (deletes shrink the document below
    // the insert-count bound checked above). Replaying the checkout plan
    // against a length counter proves every transformed position is in
    // bounds — so a CRC-valid crafted file cannot panic a later checkout.
    if !events_apply_cleanly(&oplog) {
        return Err(DecodeError::Corrupt);
    }

    let cached_doc = decode_cached_doc_only(data)?;
    Ok(Decoded { oplog, cached_doc })
}

#[cfg(test)]
mod tests {
    use super::*;
    use egwalker::testgen::random_oplog;

    #[test]
    fn roundtrip_random_histories() {
        for seed in 0..12u64 {
            let oplog = random_oplog(seed, 120, 3, 0.3);
            let bytes = encode(&oplog, EncodeOpts::default());
            let decoded = decode(&bytes).expect("decode");
            assert_eq!(decoded.oplog.len(), oplog.len(), "seed {seed}");
            assert_eq!(
                decoded.oplog.checkout_tip().content.to_string(),
                oplog.checkout_tip().content.to_string(),
                "seed {seed}"
            );
            assert!(decoded.cached_doc.is_none());
        }
    }

    #[test]
    fn cached_doc_roundtrip_and_fast_load() {
        let oplog = random_oplog(9, 150, 2, 0.2);
        let opts = EncodeOpts {
            cache_final_doc: true,
            ..Default::default()
        };
        let bytes = encode(&oplog, opts);
        let expected = oplog.checkout_tip().content.to_string();
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded.cached_doc.as_deref(), Some(expected.as_str()));
        // Fast path.
        let doc = decode_cached_doc_only(&bytes).unwrap();
        assert_eq!(doc.as_deref(), Some(expected.as_str()));
    }

    #[test]
    fn compression_shrinks_content() {
        let mut oplog = OpLog::new();
        let a = oplog.get_or_create_agent("alice");
        oplog.add_insert(
            a,
            0,
            &"all work and no play makes jack a dull boy ".repeat(100),
        );
        let plain = encode(&oplog, EncodeOpts::default());
        let packed = encode(
            &oplog,
            EncodeOpts {
                compress_content: true,
                ..Default::default()
            },
        );
        assert!(packed.len() < plain.len() / 2);
        let decoded = decode(&packed).unwrap();
        assert_eq!(
            decoded.oplog.checkout_tip().content.to_string(),
            oplog.checkout_tip().content.to_string()
        );
    }

    #[test]
    fn omitting_deleted_content_shrinks() {
        let mut oplog = OpLog::new();
        let a = oplog.get_or_create_agent("alice");
        oplog.add_insert(a, 0, &"x".repeat(500));
        oplog.add_delete(a, 0, 400);
        let full = encode(&oplog, EncodeOpts::default());
        let slim = encode(
            &oplog,
            EncodeOpts {
                keep_deleted_content: false,
                ..Default::default()
            },
        );
        assert!(
            slim.len() + 300 < full.len(),
            "{} vs {}",
            slim.len(),
            full.len()
        );
        // Still structurally decodable.
        let decoded = decode(&slim).unwrap();
        assert_eq!(decoded.oplog.len(), oplog.len());
    }

    #[test]
    fn corruption_detected() {
        let oplog = random_oplog(3, 60, 2, 0.2);
        let mut bytes = encode(&oplog, EncodeOpts::default());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(decode(&bytes).is_err());
        // Bad magic.
        let mut bytes2 = encode(&oplog, EncodeOpts::default());
        bytes2[0] = b'X';
        assert_eq!(decode(&bytes2).err(), Some(DecodeError::BadMagic));
    }

    #[test]
    fn crafted_positions_rejected() {
        // The oplog builder does not validate positions, so both files
        // below are well-formed and CRC-valid — exactly what an attacker
        // can craft. Decode must reject them, not panic a later checkout.
        let a_name = "alice";

        // Wild position: beyond anything any event could have inserted
        // (caught by the cheap prefix bound).
        let mut oplog = OpLog::new();
        let a = oplog.get_or_create_agent(a_name);
        oplog.add_insert(a, 0, "abc");
        let v = oplog.version().clone();
        oplog.add_insert_at(a, &v, 10, "x");
        let bytes = encode(&oplog, EncodeOpts::default());
        assert_eq!(decode(&bytes).err(), Some(DecodeError::Corrupt));

        // Subtle position: within the insert-count bound but beyond the
        // live document (deletes shrank it) — only the length-simulation
        // replay can see this.
        let mut oplog = OpLog::new();
        let a = oplog.get_or_create_agent(a_name);
        oplog.add_insert(a, 0, "abc");
        oplog.add_delete(a, 0, 2);
        let v = oplog.version().clone();
        oplog.add_insert_at(a, &v, 3, "x");
        let bytes = encode(&oplog, EncodeOpts::default());
        assert_eq!(decode(&bytes).err(), Some(DecodeError::Corrupt));

        // A delete overrunning the live document tail.
        let mut oplog = OpLog::new();
        let a = oplog.get_or_create_agent(a_name);
        oplog.add_insert(a, 0, "abc");
        oplog.add_delete(a, 0, 2);
        let v = oplog.version().clone();
        oplog.add_delete_at(a, &v, 0, 3);
        let bytes = encode(&oplog, EncodeOpts::default());
        assert_eq!(decode(&bytes).err(), Some(DecodeError::Corrupt));
    }

    #[test]
    fn empty_oplog() {
        let oplog = OpLog::new();
        let bytes = encode(&oplog, EncodeOpts::default());
        let decoded = decode(&bytes).unwrap();
        assert!(decoded.oplog.is_empty());
    }
}
