//! Oplog image: a bulk-loadable columnar dump of a whole [`OpLog`].
//!
//! Event-bundle records rebuild an oplog by *replaying* — every run pays
//! for parent resolution, dominator reduction, and RLE merge checks, so a
//! rebuild is O(history) with real constants. Checkpoints instead embed an
//! image of the oplog's internal columns (agent names, LV↔seq runs, graph
//! entries, frontier, critical versions, operation runs, content arena),
//! which restores by *parsing*: plain varint scans into the final `Vec`s,
//! no per-event logic. That is what makes a cached document open O(tail) —
//! the history before the checkpoint costs one linear byte scan.
//!
//! The decoder is panic-free on arbitrary bytes (the mutation fuzz loop
//! drives it) and validates everything cheap: dense spans, sorted
//! parents/frontier, agent/seq monotonicity, run-length cross-sums, and
//! UTF-8. Semantic invariants that would cost graph walks to re-derive
//! (parents mutually concurrent, frontier/criticals matching incremental
//! maintenance) are trusted from CRC-verified local storage, exactly like
//! the event records around it.
//!
//! Layout (all integers varint unless noted):
//!
//! ```text
//! image    := "EGIM" u8(version=1)
//!             agents graph frontier criticals ops content
//! agents   := n_names name*            (length-prefixed UTF-8)
//!             n_runs (agent seq_start len)*      // LV starts are dense
//! graph    := n_entries (len n_parents delta*)*  // delta = span.start - p,
//!                                                // strictly increasing
//! frontier := n lv*                              // strictly ascending
//! criticals:= n (gap len)*               // gap from previous run's end
//! ops      := n_runs (flags len pos)*    // flags: bit0 del, bit1 backward
//! content  := n_bytes byte*              // UTF-8; Ins runs index it
//!                                        // cumulatively in run order
//! ```

use crate::varint::{self, DecodeError};
use eg_dag::{AgentAssignment, Frontier, Graph, GraphEntry};
use eg_rle::{DTRange, HasLength, KVPair};
use egwalker::{ListOpKind, OpLog, OpRun};

/// Magic bytes opening an oplog image.
pub const IMAGE_MAGIC: &[u8; 4] = b"EGIM";
const IMAGE_VERSION: u8 = 1;

fn push_str(out: &mut Vec<u8>, s: &str) {
    varint::push_usize(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

/// Serialises `oplog` as a bulk-loadable image.
pub fn encode_oplog_image(oplog: &OpLog) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + oplog.len() / 2);
    out.extend_from_slice(IMAGE_MAGIC);
    out.push(IMAGE_VERSION);

    // Agents: names, then the LV→(agent, seq) runs in LV order.
    varint::push_usize(&mut out, oplog.agents.num_agents());
    for i in 0..oplog.agents.num_agents() {
        push_str(&mut out, oplog.agents.agent_name(i as u32));
    }
    let n_runs = oplog.agents.iter_lv_map().count();
    varint::push_usize(&mut out, n_runs);
    for pair in oplog.agents.iter_lv_map() {
        varint::push_usize(&mut out, pair.1.agent as usize);
        varint::push_usize(&mut out, pair.1.seq_range.start);
        varint::push_usize(&mut out, pair.1.seq_range.len());
    }

    // Graph entries; parents as deltas below the entry's first LV.
    varint::push_usize(&mut out, oplog.graph.num_entries());
    for entry in oplog.graph.iter() {
        varint::push_usize(&mut out, entry.span.len());
        varint::push_usize(&mut out, entry.parents.len());
        for &p in entry.parents.iter() {
            debug_assert!(p < entry.span.start);
            varint::push_usize(&mut out, entry.span.start - p);
        }
    }
    varint::push_usize(&mut out, oplog.version().len());
    for &lv in oplog.version().iter() {
        varint::push_usize(&mut out, lv);
    }
    varint::push_usize(&mut out, oplog.graph.criticals_runs().len());
    let mut prev_end = 0;
    for run in oplog.graph.criticals_runs() {
        varint::push_usize(&mut out, run.start - prev_end);
        varint::push_usize(&mut out, run.len());
        prev_end = run.end;
    }

    // Operation runs. Content ranges are cumulative in run order (the
    // arena is appended exactly as ops are), so only the text survives.
    let runs: Vec<(DTRange, OpRun)> = oplog.ops_in((0..oplog.len()).into()).collect();
    varint::push_usize(&mut out, runs.len());
    let mut content_chars = 0;
    for (_, run) in &runs {
        let flags = match run.kind {
            ListOpKind::Ins => 0u8,
            ListOpKind::Del => 1,
        } | if run.fwd { 0 } else { 2 };
        out.push(flags);
        varint::push_usize(&mut out, run.len());
        varint::push_usize(&mut out, run.loc.start);
        if let Some(c) = run.content {
            assert_eq!(
                c.start, content_chars,
                "content arena ranges must be cumulative in op order"
            );
            content_chars = c.end;
        }
    }
    let text = oplog.content_slice((0..content_chars).into());
    push_str(&mut out, text);
    out
}

/// Restores an oplog from an image produced by [`encode_oplog_image`].
pub fn decode_oplog_image(bytes: &[u8]) -> Result<OpLog, DecodeError> {
    let input = &mut { bytes };
    if varint::take(input, IMAGE_MAGIC.len())? != IMAGE_MAGIC
        || varint::read_u8(input)? != IMAGE_VERSION
    {
        return Err(DecodeError::BadMagic);
    }

    // Agents.
    let n_names = varint::read_usize(input)?;
    let mut agents = AgentAssignment::new();
    for i in 0..n_names {
        let name = read_str(input)?;
        // Interning must hand out dense IDs — a duplicate name would not.
        if agents.get_or_create_agent(name) as usize != i {
            return Err(DecodeError::Corrupt);
        }
    }
    let n_runs = varint::read_usize(input)?;
    let mut next_seq = vec![0usize; n_names];
    let mut next_lv = 0usize;
    for _ in 0..n_runs {
        let agent = varint::read_usize(input)?;
        let seq_start = varint::read_usize(input)?;
        let len = varint::read_usize(input)?;
        let (Some(slot), Some(seq_end), Some(lv_end)) = (
            next_seq.get_mut(agent),
            seq_start.checked_add(len),
            next_lv.checked_add(len),
        ) else {
            return Err(DecodeError::Corrupt);
        };
        if len == 0 || seq_start < *slot {
            return Err(DecodeError::Corrupt);
        }
        // The checks above are exactly `assign_at`'s panic conditions.
        agents.assign_at(
            agent as u32,
            (seq_start..seq_end).into(),
            (next_lv..lv_end).into(),
        );
        *slot = seq_end;
        next_lv = lv_end;
    }
    let total = next_lv;

    // Graph entries.
    let n_entries = varint::read_usize(input)?;
    let mut entries = Vec::with_capacity(n_entries.min(bytes.len()));
    let mut at = 0usize;
    for _ in 0..n_entries {
        let len = varint::read_usize(input)?;
        let n_parents = varint::read_usize(input)?;
        let Some(end) = at.checked_add(len) else {
            return Err(DecodeError::Corrupt);
        };
        if len == 0 || end > total || n_parents > input.len() {
            return Err(DecodeError::Corrupt);
        }
        let mut parents = Vec::with_capacity(n_parents);
        let mut prev_delta = usize::MAX;
        for _ in 0..n_parents {
            // Encoded ascending-parent order means strictly decreasing
            // deltas, so the parents come out ascending and distinct.
            let delta = varint::read_usize(input)?;
            // Deltas strictly increase ⇒ parents strictly ascend once
            // reversed, and stay below the span.
            if delta == 0 || delta > at || delta >= prev_delta {
                return Err(DecodeError::Corrupt);
            }
            prev_delta = delta;
            parents.push(at - delta);
        }
        entries.push(GraphEntry {
            span: (at..end).into(),
            parents: Frontier(parents),
        });
        at = end;
    }
    if at != total {
        return Err(DecodeError::Corrupt);
    }

    let n_frontier = varint::read_usize(input)?;
    if (n_frontier == 0) != (total == 0) || n_frontier > input.len() {
        return Err(DecodeError::Corrupt);
    }
    let mut frontier = Vec::with_capacity(n_frontier);
    for _ in 0..n_frontier {
        let lv = varint::read_usize(input)?;
        if lv >= total || frontier.last().is_some_and(|&p| p >= lv) {
            return Err(DecodeError::Corrupt);
        }
        frontier.push(lv);
    }

    let n_criticals = varint::read_usize(input)?;
    let mut criticals = Vec::with_capacity(n_criticals.min(bytes.len()));
    let mut prev_end = 0usize;
    for _ in 0..n_criticals {
        let gap = varint::read_usize(input)?;
        let len = varint::read_usize(input)?;
        let (Some(start), Some(end)) = (
            prev_end.checked_add(gap),
            prev_end.checked_add(gap).and_then(|s| s.checked_add(len)),
        ) else {
            return Err(DecodeError::Corrupt);
        };
        if len == 0 || end > total {
            return Err(DecodeError::Corrupt);
        }
        criticals.push(DTRange::from(start..end));
        prev_end = end;
    }

    // Operation runs.
    let n_ops = varint::read_usize(input)?;
    let mut runs: Vec<KVPair<OpRun>> = Vec::with_capacity(n_ops.min(bytes.len()));
    let mut lv = 0usize;
    let mut content_chars = 0usize;
    for _ in 0..n_ops {
        let (&flags, rest) = input.split_first().ok_or(DecodeError::UnexpectedEof)?;
        *input = rest;
        if flags & !3 != 0 {
            return Err(DecodeError::Corrupt);
        }
        let kind = if flags & 1 == 0 {
            ListOpKind::Ins
        } else {
            ListOpKind::Del
        };
        let fwd = flags & 2 == 0;
        let len = varint::read_usize(input)?;
        let pos = varint::read_usize(input)?;
        let (Some(lv_end), Some(loc_end)) = (lv.checked_add(len), pos.checked_add(len)) else {
            return Err(DecodeError::Corrupt);
        };
        if len == 0 || lv_end > total || (kind == ListOpKind::Ins && !fwd && len > 1) {
            return Err(DecodeError::Corrupt);
        }
        let content = if kind == ListOpKind::Ins {
            let Some(c_end) = content_chars.checked_add(len) else {
                return Err(DecodeError::Corrupt);
            };
            let c = DTRange::from(content_chars..c_end);
            content_chars = c_end;
            Some(c)
        } else {
            None
        };
        runs.push(KVPair(
            lv,
            OpRun {
                kind,
                loc: (pos..loc_end).into(),
                fwd,
                content,
            },
        ));
        lv = lv_end;
    }
    if lv != total {
        return Err(DecodeError::Corrupt);
    }

    let text = read_str(input)?;
    if !input.is_empty() || text.chars().count() != content_chars {
        return Err(DecodeError::Corrupt);
    }

    let graph = Graph::from_parts(entries, Frontier(frontier), criticals);
    Ok(OpLog::from_image_parts(graph, agents, runs, text))
}

fn read_str<'a>(input: &mut &'a [u8]) -> Result<&'a str, DecodeError> {
    let len = varint::read_usize(input)?;
    if input.len() < len {
        return Err(DecodeError::UnexpectedEof);
    }
    let (raw, rest) = input.split_at(len);
    *input = rest;
    std::str::from_utf8(raw).map_err(|_| DecodeError::BadUtf8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use egwalker::testgen::random_oplog;

    fn assert_equivalent(a: &OpLog, b: &OpLog) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.version(), b.version());
        assert_eq!(a.graph, b.graph);
        assert_eq!(
            a.checkout_tip().content.to_string(),
            b.checkout_tip().content.to_string()
        );
        for lv in 0..a.len() {
            assert_eq!(a.lv_to_remote(lv), b.lv_to_remote(lv), "lv {lv}");
            assert_eq!(a.unit_op(lv), b.unit_op(lv), "lv {lv}");
        }
    }

    #[test]
    fn image_roundtrip_simple() {
        let mut oplog = OpLog::new();
        let a = oplog.get_or_create_agent("alice");
        let b = oplog.get_or_create_agent("bob");
        oplog.add_insert(a, 0, "héllo wörld");
        let v = oplog.version().clone();
        oplog.add_delete_at(a, &v, 0, 3);
        oplog.add_insert_at(b, &v, 5, "→🦀");
        let bytes = encode_oplog_image(&oplog);
        let back = decode_oplog_image(&bytes).expect("roundtrip");
        assert_equivalent(&oplog, &back);
    }

    #[test]
    fn image_roundtrip_empty() {
        let oplog = OpLog::new();
        let back = decode_oplog_image(&encode_oplog_image(&oplog)).expect("empty");
        assert!(back.is_empty());
        assert_eq!(back.agents.num_agents(), 0);
    }

    #[test]
    fn image_roundtrip_random() {
        for seed in 0..40 {
            let oplog = random_oplog(seed, 120, 3, 0.2);
            let bytes = encode_oplog_image(&oplog);
            let back = decode_oplog_image(&bytes).expect("roundtrip");
            assert_equivalent(&oplog, &back);
        }
    }

    /// A restored oplog must keep *working*, not just read back: new local
    /// edits and merges hang off the restored graph/agent state.
    #[test]
    fn restored_oplog_accepts_new_events() {
        let mut oplog = random_oplog(7, 120, 3, 0.2);
        let mut back = decode_oplog_image(&encode_oplog_image(&oplog)).expect("roundtrip");
        let a_orig = oplog.get_or_create_agent("post-restore");
        let a_back = back.get_or_create_agent("post-restore");
        oplog.add_insert(a_orig, 0, "tail");
        back.add_insert(a_back, 0, "tail");
        assert_equivalent(&oplog, &back);
    }

    #[test]
    fn image_decode_rejects_mutations() {
        let oplog = random_oplog(3, 60, 3, 0.2);
        let good = encode_oplog_image(&oplog);
        // Truncations never panic.
        for cut in 0..good.len() {
            let _ = decode_oplog_image(&good[..cut]);
        }
        // Flipping any single byte either fails cleanly or decodes into
        // *some* structurally valid oplog — never panics.
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x2a;
            let _ = decode_oplog_image(&bad);
        }
        let mut padded = good.clone();
        padded.push(0);
        assert!(decode_oplog_image(&padded).is_err());
    }
}
