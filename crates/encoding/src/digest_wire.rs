//! Wire codec for the sync layer's anti-entropy traffic: per-document
//! frontier digests and batched per-document bundle payloads.
//!
//! The replication layer used to exchange digests as in-memory
//! `Vec<RemoteId>` values, which never crossed a wire and therefore never
//! had an honest size. These two framings give the sync engine real
//! bytes-on-wire for both message kinds, using the same LEB128 +
//! interned-agent-table machinery as [`crate::encode_bundle`]:
//!
//! * a **digest** (`"EGWD"`) names, per document, the frontier of the
//!   sender — the `(replicaID, seqNo)` IDs of its version tips. Frontiers
//!   are almost always one or two entries (paper §2.3), so a digest for a
//!   whole shard space is tens of bytes where a full version vector would
//!   grow with the number of agents;
//! * a **bundle batch** (`"EGWM"`) carries one encoded
//!   [`egwalker::EventBundle`] per document, so one flush of a link's
//!   outbox travels as a single framed message.
//!
//! Layout (all integers LEB128):
//!
//! ```text
//! digest:  "EGWD" | version (=1)
//!          agent table: count, then per agent: name length, UTF-8 bytes
//!          doc count, then per doc: doc id | tip count | per tip: agent index, seq
//!          CRC32 of everything above (4 bytes little-endian)
//!
//! batch:   "EGWM" | version (=1)
//!          doc count, then per doc: doc id | byte length | encode_bundle bytes
//!          CRC32 of everything above (4 bytes little-endian)
//! ```

use crate::bundle_wire::{decode_bundle, encode_bundle};
use crate::crc::{crc32, split_crc};
use crate::varint::{push_u64, push_usize, read_u64, read_u8, read_usize, take, DecodeError};
use eg_dag::RemoteId;
use egwalker::EventBundle;
use std::collections::HashMap;

/// Frame magic of an encoded frontier digest.
pub const DIGEST_MAGIC: &[u8; 4] = b"EGWD";
/// Frame magic of an encoded per-document bundle batch.
pub const BUNDLE_BATCH_MAGIC: &[u8; 4] = b"EGWM";
const WIRE_VERSION: u8 = 1;

/// Serialises per-document frontier digests for the network.
///
/// `docs` pairs each document id with the sender's frontier for it, in
/// remote-ID form (e.g. `OpLog::remote_version`).
pub fn encode_digest(docs: &[(u64, Vec<RemoteId>)]) -> Vec<u8> {
    let mut names: Vec<&str> = Vec::new();
    let mut index: HashMap<&str, usize> = HashMap::new();
    for (_, tips) in docs {
        for tip in tips {
            index.entry(tip.agent.as_str()).or_insert_with(|| {
                names.push(tip.agent.as_str());
                names.len() - 1
            });
        }
    }

    let mut out = Vec::new();
    out.extend_from_slice(DIGEST_MAGIC);
    out.push(WIRE_VERSION);
    push_usize(&mut out, names.len());
    for name in &names {
        push_usize(&mut out, name.len());
        out.extend_from_slice(name.as_bytes());
    }
    push_usize(&mut out, docs.len());
    for (doc, tips) in docs {
        push_u64(&mut out, *doc);
        push_usize(&mut out, tips.len());
        for tip in tips {
            push_usize(&mut out, index[tip.agent.as_str()]);
            push_usize(&mut out, tip.seq);
        }
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Deserialises a frontier digest, validating framing and checksum.
pub fn decode_digest(bytes: &[u8]) -> Result<Vec<(u64, Vec<RemoteId>)>, DecodeError> {
    let mut input = check_frame(bytes, DIGEST_MAGIC)?;

    let num_names = read_usize(&mut input)?;
    if num_names > input.len() {
        return Err(DecodeError::Corrupt);
    }
    let mut names = Vec::with_capacity(num_names);
    for _ in 0..num_names {
        let len = read_usize(&mut input)?;
        let raw = take(&mut input, len)?;
        let name = std::str::from_utf8(raw).map_err(|_| DecodeError::BadUtf8)?;
        names.push(name.to_string());
    }

    let num_docs = read_usize(&mut input)?;
    if num_docs > input.len() {
        return Err(DecodeError::Corrupt);
    }
    let mut docs = Vec::with_capacity(num_docs);
    for _ in 0..num_docs {
        let doc = read_u64(&mut input)?;
        let num_tips = read_usize(&mut input)?;
        if num_tips > input.len() {
            return Err(DecodeError::Corrupt);
        }
        let mut tips = Vec::with_capacity(num_tips);
        for _ in 0..num_tips {
            let agent_idx = read_usize(&mut input)?;
            let agent = names
                .get(agent_idx)
                .ok_or(DecodeError::Corrupt)?
                .to_string();
            let seq = read_usize(&mut input)?;
            tips.push(RemoteId { agent, seq });
        }
        docs.push((doc, tips));
    }
    if !input.is_empty() {
        return Err(DecodeError::Corrupt);
    }
    Ok(docs)
}

/// Serialises a batch of per-document event bundles for the network.
pub fn encode_bundle_batch(docs: &[(u64, EventBundle)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(BUNDLE_BATCH_MAGIC);
    out.push(WIRE_VERSION);
    push_usize(&mut out, docs.len());
    for (doc, bundle) in docs {
        push_u64(&mut out, *doc);
        let encoded = encode_bundle(bundle);
        push_usize(&mut out, encoded.len());
        out.extend_from_slice(&encoded);
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Deserialises a batch of per-document event bundles.
pub fn decode_bundle_batch(bytes: &[u8]) -> Result<Vec<(u64, EventBundle)>, DecodeError> {
    let mut input = check_frame(bytes, BUNDLE_BATCH_MAGIC)?;
    let num_docs = read_usize(&mut input)?;
    if num_docs > input.len() {
        return Err(DecodeError::Corrupt);
    }
    let mut docs = Vec::with_capacity(num_docs);
    for _ in 0..num_docs {
        let doc = read_u64(&mut input)?;
        let len = read_usize(&mut input)?;
        let raw = take(&mut input, len)?;
        docs.push((doc, decode_bundle(raw)?));
    }
    if !input.is_empty() {
        return Err(DecodeError::Corrupt);
    }
    Ok(docs)
}

/// Validates magic, version, and trailing CRC32; returns the body between
/// the version byte and the checksum.
fn check_frame<'a>(bytes: &'a [u8], magic: &[u8; 4]) -> Result<&'a [u8], DecodeError> {
    let (body, stored) = split_crc(bytes).ok_or(DecodeError::UnexpectedEof)?;
    if crc32(body) != stored {
        return Err(DecodeError::Corrupt);
    }
    let mut input = body;
    if take(&mut input, magic.len())? != magic.as_slice() {
        return Err(DecodeError::BadMagic);
    }
    if read_u8(&mut input)? != WIRE_VERSION {
        return Err(DecodeError::Corrupt);
    }
    Ok(input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use egwalker::OpLog;

    fn sample_digest() -> Vec<(u64, Vec<RemoteId>)> {
        vec![
            (
                0,
                vec![
                    RemoteId {
                        agent: "alice".into(),
                        seq: 41,
                    },
                    RemoteId {
                        agent: "bob".into(),
                        seq: 7,
                    },
                ],
            ),
            (3, vec![]),
            (
                900,
                vec![RemoteId {
                    agent: "alice".into(),
                    seq: 2,
                }],
            ),
        ]
    }

    #[test]
    fn digest_roundtrip() {
        let digest = sample_digest();
        let bytes = encode_digest(&digest);
        assert_eq!(decode_digest(&bytes).unwrap(), digest);
    }

    #[test]
    fn empty_digest_roundtrip() {
        let bytes = encode_digest(&[]);
        assert!(decode_digest(&bytes).unwrap().is_empty());
    }

    #[test]
    fn digest_is_compact() {
        let bytes = encode_digest(&sample_digest());
        // Two interned names, three docs, three tips: tens of bytes.
        assert!(
            bytes.len() < 48,
            "digest unexpectedly large: {}",
            bytes.len()
        );
    }

    #[test]
    fn digest_corruption_detected() {
        let bytes = encode_digest(&sample_digest());
        for i in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x20;
            assert!(
                decode_digest(&corrupted).is_err(),
                "bit flip at byte {i} went undetected"
            );
        }
        for cut in 0..bytes.len() {
            assert!(decode_digest(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn bundle_batch_roundtrip() {
        let mut a = OpLog::new();
        let alice = a.get_or_create_agent("alice");
        a.add_insert(alice, 0, "doc zero");
        let mut b = OpLog::new();
        let bob = b.get_or_create_agent("bob");
        b.add_insert(bob, 0, "doc seven");
        b.add_delete(bob, 0, 4);

        let batch = vec![(0u64, a.bundle_since(&[])), (7u64, b.bundle_since(&[]))];
        let bytes = encode_bundle_batch(&batch);
        let decoded = decode_bundle_batch(&bytes).unwrap();
        assert_eq!(decoded, batch);
    }

    #[test]
    fn bundle_batch_corruption_detected() {
        let mut a = OpLog::new();
        let alice = a.get_or_create_agent("alice");
        a.add_insert(alice, 0, "x");
        let bytes = encode_bundle_batch(&[(1, a.bundle_since(&[]))]);
        for i in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x40;
            assert!(decode_bundle_batch(&corrupted).is_err(), "byte {i}");
        }
    }

    #[test]
    fn magics_disambiguate_message_kinds() {
        let digest = encode_digest(&sample_digest());
        let batch = encode_bundle_batch(&[]);
        assert_eq!(&digest[..4], DIGEST_MAGIC);
        assert_eq!(&batch[..4], BUNDLE_BATCH_MAGIC);
        assert!(matches!(decode_digest(&batch), Err(DecodeError::BadMagic)));
        assert!(matches!(
            decode_bundle_batch(&digest),
            Err(DecodeError::BadMagic)
        ));
    }
}
