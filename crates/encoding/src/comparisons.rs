//! Comparison encodings for the file-size experiments (paper §4.5).
//!
//! * [`encode_crdt_state`] — a Yjs-*like* CRDT state file: items in
//!   document order with IDs and origins, deleted characters' content and
//!   the event graph's happened-before edges omitted (what Fig. 12
//!   compares against);
//! * [`encode_verbose`] — a naive one-record-per-event history file with no
//!   run-length encoding: the upper baseline standing in for heavier
//!   full-history formats in Fig. 11.

use crate::varint::{push_usize, read_usize, DecodeError};
use eg_rle::HasLength;
use egwalker::convert::{to_crdt_ops, CrdtOp};
use egwalker::{ListOpKind, OpLog};

/// Encodes the Yjs-like persistent CRDT state: one record per item run
/// (ID, origins, deleted flag, content for visible items). No parents, no
/// deleted text.
pub fn encode_crdt_state(oplog: &OpLog) -> Vec<u8> {
    let ops = to_crdt_ops(oplog);
    // Deleted set.
    let mut deleted: Vec<eg_rle::DTRange> = ops
        .iter()
        .filter_map(|op| match op {
            CrdtOp::Del { target } => Some(*target),
            _ => None,
        })
        .collect();
    deleted.sort_unstable();
    let is_deleted = |lv: usize| -> bool {
        deleted
            .binary_search_by(|r| {
                if lv < r.start {
                    std::cmp::Ordering::Greater
                } else if lv >= r.end {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    };

    let mut out = Vec::new();
    out.extend_from_slice(b"YJSLIKE1");
    for op in &ops {
        if let CrdtOp::Ins {
            id,
            origin_left,
            origin_right,
            content,
        } = op
        {
            // Split the run at deleted/visible boundaries.
            let chars: Vec<char> = content.chars().collect();
            let mut k = 0usize;
            while k < id.len() {
                let del = is_deleted(id.start + k);
                let mut end = k + 1;
                while end < id.len() && is_deleted(id.start + end) == del {
                    end += 1;
                }
                // Record: id (agent+seq), len, origins, flag, content.
                let span = oplog.agents.lv_to_agent_span(id.start + k);
                push_usize(&mut out, span.agent as usize);
                push_usize(&mut out, span.seq_range.start);
                push_usize(&mut out, end - k);
                push_usize(&mut out, origin_left.map(|v| v + 1).unwrap_or(0));
                push_usize(&mut out, origin_right.map(|v| v + 1).unwrap_or(0));
                out.push(del as u8);
                if !del {
                    let text: String = chars[k..end].iter().collect();
                    push_usize(&mut out, text.len());
                    out.extend_from_slice(text.as_bytes());
                }
                k = end;
            }
        }
    }
    out
}

/// Encodes a naive per-event full-history file: every event spelled out
/// with its agent, sequence number, parents, kind, position and character.
pub fn encode_verbose(oplog: &OpLog) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"VERBOSE1");
    push_usize(&mut out, oplog.len());
    for lv in 0..oplog.len() {
        let (kind, pos, ch) = oplog.unit_op(lv);
        let span = oplog.agents.lv_to_agent_span(lv);
        push_usize(&mut out, span.agent as usize);
        push_usize(&mut out, span.seq_range.start);
        let parents = oplog.graph.parents_of(lv);
        push_usize(&mut out, parents.len());
        for &p in parents.iter() {
            push_usize(&mut out, p);
        }
        out.push(matches!(kind, ListOpKind::Del) as u8);
        push_usize(&mut out, pos);
        if let Some(c) = ch {
            let mut buf = [0u8; 4];
            let s = c.encode_utf8(&mut buf);
            out.push(s.len() as u8);
            out.extend_from_slice(s.as_bytes());
        }
    }
    out
}

/// Decodes the event count of a verbose file (sanity-check helper).
pub fn verbose_event_count(data: &[u8]) -> Result<usize, DecodeError> {
    if data.len() < 8 || &data[..8] != b"VERBOSE1" {
        return Err(DecodeError::BadMagic);
    }
    let mut cur = &data[8..];
    read_usize(&mut cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use egwalker::testgen::random_oplog;

    #[test]
    fn crdt_state_smaller_than_verbose() {
        let oplog = random_oplog(5, 400, 3, 0.3);
        let state = encode_crdt_state(&oplog);
        let verbose = encode_verbose(&oplog);
        assert!(state.len() < verbose.len());
        assert_eq!(verbose_event_count(&verbose).unwrap(), oplog.len());
    }

    #[test]
    fn crdt_state_omits_deleted_text() {
        let mut oplog = OpLog::new();
        let a = oplog.get_or_create_agent("alice");
        oplog.add_insert(a, 0, &"z".repeat(400));
        let full = encode_crdt_state(&oplog);
        oplog.add_delete(a, 0, 350);
        let trimmed = encode_crdt_state(&oplog);
        assert!(trimmed.len() + 300 < full.len());
    }

    #[test]
    fn verbose_scales_per_event() {
        let small = encode_verbose(&random_oplog(1, 50, 2, 0.2));
        let large = encode_verbose(&random_oplog(1, 500, 2, 0.2));
        assert!(large.len() > small.len() * 5);
    }
}
