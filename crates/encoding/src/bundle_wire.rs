//! Wire codec for [`EventBundle`]s — the network form of an event-graph
//! subset (paper §3.8, final paragraph).
//!
//! The whole-file format identifies parents by topological index, which is
//! meaningless outside the file. A bundle instead names events by
//! `(replicaID, seqNo)`; this codec keeps that compact with an interned
//! agent-name table and LEB128 columns, framed with a magic header and a
//! CRC32 trailer like the main format.
//!
//! Layout (all integers LEB128):
//!
//! ```text
//! "EGWB" | format version (=1)
//! agent table:  count, then per agent: name length, UTF-8 name bytes
//! runs:         count, then per run:
//!   agent index | seq_start | flags (bit0 kind, bit1 fwd)
//!   loc.start | run length
//!   parent count, then per parent: agent index | seq
//!   Ins only: content byte length | UTF-8 content
//! CRC32 of everything above (4 bytes little-endian)
//! ```

use crate::crc::{crc32, split_crc};
use crate::varint::{push_usize, read_u8, read_usize, take, DecodeError};
use eg_dag::{AgentId, RemoteId};
use eg_rle::HasLength;
use egwalker::{BundleError, BundleRun, EventBundle, ListOpKind, OpLog, RunView};
use std::collections::HashMap;

const BUNDLE_MAGIC: &[u8; 4] = b"EGWB";
const BUNDLE_VERSION: u8 = 1;

/// Serialises an event bundle for the network.
pub fn encode_bundle(bundle: &EventBundle) -> Vec<u8> {
    // Intern agent names (run agents and parent agents alike).
    fn intern<'a>(
        name: &'a str,
        names: &mut Vec<&'a str>,
        index: &mut HashMap<&'a str, usize>,
    ) -> usize {
        if let Some(&i) = index.get(name) {
            return i;
        }
        let i = names.len();
        names.push(name);
        index.insert(name, i);
        i
    }
    let mut names: Vec<&str> = Vec::new();
    let mut index: HashMap<&str, usize> = HashMap::new();

    let mut agent_of_run = Vec::with_capacity(bundle.runs.len());
    let mut parents_of_run: Vec<Vec<(usize, usize)>> = Vec::with_capacity(bundle.runs.len());
    for run in &bundle.runs {
        agent_of_run.push(intern(&run.agent, &mut names, &mut index));
        parents_of_run.push(
            run.parents
                .iter()
                .map(|p| (intern(&p.agent, &mut names, &mut index), p.seq))
                .collect(),
        );
    }

    let mut out = Vec::new();
    out.extend_from_slice(BUNDLE_MAGIC);
    out.push(BUNDLE_VERSION);
    push_usize(&mut out, names.len());
    for name in &names {
        push_usize(&mut out, name.len());
        out.extend_from_slice(name.as_bytes());
    }
    push_usize(&mut out, bundle.runs.len());
    for (i, run) in bundle.runs.iter().enumerate() {
        push_usize(&mut out, agent_of_run[i]);
        push_usize(&mut out, run.seq_start);
        let mut flags = 0u8;
        if run.kind == ListOpKind::Del {
            flags |= 1;
        }
        if run.fwd {
            flags |= 2;
        }
        out.push(flags);
        push_usize(&mut out, run.loc.start);
        push_usize(&mut out, run.loc.len());
        push_usize(&mut out, parents_of_run[i].len());
        for &(agent, seq) in &parents_of_run[i] {
            push_usize(&mut out, agent);
            push_usize(&mut out, seq);
        }
        if run.kind == ListOpKind::Ins {
            let content = run.content.as_deref().unwrap_or("");
            push_usize(&mut out, content.len());
            out.extend_from_slice(content.as_bytes());
        }
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Deserialises an event bundle, validating framing and checksum.
///
/// Structural/causal validity is *not* checked here — that is
/// [`egwalker::OpLog::apply_bundle`]'s job, because it depends on the
/// receiving replica's state.
pub fn decode_bundle(bytes: &[u8]) -> Result<EventBundle, DecodeError> {
    let (body, stored) = split_crc(bytes).ok_or(DecodeError::UnexpectedEof)?;
    if crc32(body) != stored {
        return Err(DecodeError::Corrupt);
    }
    let mut input = body;
    let magic = take(&mut input, 4)?;
    if magic != BUNDLE_MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = read_u8(&mut input)?;
    if version != BUNDLE_VERSION {
        return Err(DecodeError::Corrupt);
    }

    let num_names = read_usize(&mut input)?;
    // Agents cannot outnumber remaining bytes (each takes ≥1 byte).
    if num_names > input.len() {
        return Err(DecodeError::Corrupt);
    }
    let mut names = Vec::with_capacity(num_names);
    for _ in 0..num_names {
        let len = read_usize(&mut input)?;
        let raw = take(&mut input, len)?;
        let name = std::str::from_utf8(raw).map_err(|_| DecodeError::BadUtf8)?;
        names.push(name.to_string());
    }

    let num_runs = read_usize(&mut input)?;
    if num_runs > input.len() {
        return Err(DecodeError::Corrupt);
    }
    let mut runs = Vec::with_capacity(num_runs);
    for _ in 0..num_runs {
        let agent_idx = read_usize(&mut input)?;
        let agent = names
            .get(agent_idx)
            .ok_or(DecodeError::Corrupt)?
            .to_string();
        let seq_start = read_usize(&mut input)?;
        let flags = read_u8(&mut input)?;
        if flags & !3 != 0 {
            return Err(DecodeError::Corrupt);
        }
        let kind = if flags & 1 != 0 {
            ListOpKind::Del
        } else {
            ListOpKind::Ins
        };
        let fwd = flags & 2 != 0;
        let loc_start = read_usize(&mut input)?;
        let len = read_usize(&mut input)?;
        if len == 0 {
            return Err(DecodeError::Corrupt);
        }
        // `loc_start + len` is computed below; near-usize::MAX values in a
        // (CRC-valid) crafted frame must not overflow-panic the decoder.
        let loc_end = loc_start.checked_add(len).ok_or(DecodeError::Corrupt)?;
        let num_parents = read_usize(&mut input)?;
        if num_parents > input.len() {
            return Err(DecodeError::Corrupt);
        }
        let mut parents = Vec::with_capacity(num_parents);
        for _ in 0..num_parents {
            let pa = read_usize(&mut input)?;
            let agent = names.get(pa).ok_or(DecodeError::Corrupt)?.to_string();
            let seq = read_usize(&mut input)?;
            parents.push(RemoteId { agent, seq });
        }
        let content = if kind == ListOpKind::Ins {
            let byte_len = read_usize(&mut input)?;
            let raw = take(&mut input, byte_len)?;
            let text = std::str::from_utf8(raw).map_err(|_| DecodeError::BadUtf8)?;
            if text.chars().count() != len {
                return Err(DecodeError::Corrupt);
            }
            Some(text.to_string())
        } else {
            None
        };
        runs.push(BundleRun {
            agent,
            seq_start,
            parents,
            kind,
            loc: (loc_start..loc_end).into(),
            fwd,
            content,
        });
    }
    if !input.is_empty() {
        return Err(DecodeError::Corrupt);
    }
    Ok(EventBundle { runs })
}

/// Why [`apply_bundle_bytes`] failed: the frame did not parse, or a run
/// could not be applied to the target oplog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApplyBundleError {
    /// Framing, checksum, or structural decode failure.
    Decode(DecodeError),
    /// A decoded run was rejected by the oplog (missing parents or
    /// malformed structure).
    Bundle(BundleError),
}

impl std::fmt::Display for ApplyBundleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApplyBundleError::Decode(e) => write!(f, "bundle decode: {e}"),
            ApplyBundleError::Bundle(e) => write!(f, "bundle apply: {e}"),
        }
    }
}

impl std::error::Error for ApplyBundleError {}

impl From<DecodeError> for ApplyBundleError {
    fn from(e: DecodeError) -> Self {
        ApplyBundleError::Decode(e)
    }
}

impl From<BundleError> for ApplyBundleError {
    fn from(e: BundleError) -> Self {
        ApplyBundleError::Bundle(e)
    }
}

/// Decodes a wire bundle and applies it straight to `oplog`, one run at
/// a time, without materialising an [`EventBundle`].
///
/// The wire format's interned agent-name table maps to local
/// [`AgentId`]s once per bundle, after which the per-run hot loop
/// allocates nothing: agents and parents are id pairs, content is
/// borrowed from the input. On a segment-store open — thousands of runs
/// per document — this is several times faster than
/// [`decode_bundle`] + [`OpLog::apply_bundle`].
///
/// Returns the LV range newly assigned. **Not atomic**: a decode or
/// apply error partway through leaves the earlier runs applied. Use it
/// where the whole oplog is discarded on failure (rebuilding from disk);
/// network ingest with causal buffering should keep the all-or-nothing
/// [`OpLog::apply_bundle`].
pub fn apply_bundle_bytes(
    oplog: &mut OpLog,
    bytes: &[u8],
) -> Result<eg_rle::DTRange, ApplyBundleError> {
    let (body, stored) = split_crc(bytes).ok_or(DecodeError::UnexpectedEof)?;
    if crc32(body) != stored {
        return Err(DecodeError::Corrupt.into());
    }
    let mut input = body;
    let magic = take(&mut input, 4)?;
    if magic != BUNDLE_MAGIC {
        return Err(DecodeError::BadMagic.into());
    }
    let version = read_u8(&mut input)?;
    if version != BUNDLE_VERSION {
        return Err(DecodeError::Corrupt.into());
    }

    let num_names = read_usize(&mut input)?;
    if num_names > input.len() {
        return Err(DecodeError::Corrupt.into());
    }
    // The one string-keyed pass: intern every bundle agent into the
    // target oplog up front.
    let mut ids: Vec<AgentId> = Vec::with_capacity(num_names);
    for _ in 0..num_names {
        let len = read_usize(&mut input)?;
        let raw = take(&mut input, len)?;
        let name = std::str::from_utf8(raw).map_err(|_| DecodeError::BadUtf8)?;
        ids.push(oplog.get_or_create_agent(name));
    }

    let first_new = oplog.len();
    let num_runs = read_usize(&mut input)?;
    if num_runs > input.len() {
        return Err(DecodeError::Corrupt.into());
    }
    let mut parents: Vec<(AgentId, usize)> = Vec::new();
    for _ in 0..num_runs {
        let agent_idx = read_usize(&mut input)?;
        let &agent = ids.get(agent_idx).ok_or(DecodeError::Corrupt)?;
        let seq_start = read_usize(&mut input)?;
        let flags = read_u8(&mut input)?;
        if flags & !3 != 0 {
            return Err(DecodeError::Corrupt.into());
        }
        let kind = if flags & 1 != 0 {
            ListOpKind::Del
        } else {
            ListOpKind::Ins
        };
        let fwd = flags & 2 != 0;
        let loc_start = read_usize(&mut input)?;
        let len = read_usize(&mut input)?;
        if len == 0 {
            return Err(DecodeError::Corrupt.into());
        }
        let loc_end = loc_start.checked_add(len).ok_or(DecodeError::Corrupt)?;
        let num_parents = read_usize(&mut input)?;
        if num_parents > input.len() {
            return Err(DecodeError::Corrupt.into());
        }
        parents.clear();
        for _ in 0..num_parents {
            let pa = read_usize(&mut input)?;
            let &parent_agent = ids.get(pa).ok_or(DecodeError::Corrupt)?;
            let seq = read_usize(&mut input)?;
            parents.push((parent_agent, seq));
        }
        let content = if kind == ListOpKind::Ins {
            let byte_len = read_usize(&mut input)?;
            let raw = take(&mut input, byte_len)?;
            Some(std::str::from_utf8(raw).map_err(|_| DecodeError::BadUtf8)?)
        } else {
            None
        };
        oplog.apply_run_view(&RunView {
            agent,
            seq_start,
            parents: &parents,
            kind,
            loc: (loc_start..loc_end).into(),
            fwd,
            content,
        })?;
    }
    if !input.is_empty() {
        return Err(DecodeError::Corrupt.into());
    }
    Ok((first_new..oplog.len()).into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bundle() -> EventBundle {
        let mut a = OpLog::new();
        let alice = a.get_or_create_agent("alice");
        let bob = a.get_or_create_agent("bob");
        a.add_insert(alice, 0, "base text");
        let v = a.version().clone();
        a.add_insert_at(alice, &v, 4, " and more");
        a.add_insert_at(bob, &v, 9, "!!");
        a.add_delete(alice, 0, 2);
        a.bundle_since(&[])
    }

    #[test]
    fn roundtrip() {
        let bundle = sample_bundle();
        let bytes = encode_bundle(&bundle);
        let decoded = decode_bundle(&bytes).unwrap();
        assert_eq!(decoded, bundle);
    }

    #[test]
    fn roundtrip_applies_identically() {
        let bundle = sample_bundle();
        let bytes = encode_bundle(&bundle);
        let decoded = decode_bundle(&bytes).unwrap();
        let mut log1 = OpLog::new();
        log1.apply_bundle(&bundle).unwrap();
        let mut log2 = OpLog::new();
        log2.apply_bundle(&decoded).unwrap();
        assert_eq!(
            log1.checkout_tip().content.to_string(),
            log2.checkout_tip().content.to_string()
        );
    }

    #[test]
    fn empty_bundle_roundtrips() {
        let bundle = EventBundle::default();
        let decoded = decode_bundle(&encode_bundle(&bundle)).unwrap();
        assert!(decoded.is_empty());
    }

    #[test]
    fn crc_detects_corruption() {
        let bytes = encode_bundle(&sample_bundle());
        for i in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x40;
            assert!(
                decode_bundle(&corrupted).is_err(),
                "bit flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncation_detected() {
        let bytes = encode_bundle(&sample_bundle());
        for cut in 0..bytes.len() {
            assert!(decode_bundle(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn unicode_content_roundtrips() {
        let mut a = OpLog::new();
        let alice = a.get_or_create_agent("alice");
        a.add_insert(alice, 0, "héllo 世界 🦀");
        let bundle = a.bundle_since(&[]);
        let decoded = decode_bundle(&encode_bundle(&bundle)).unwrap();
        let mut b = OpLog::new();
        b.apply_bundle(&decoded).unwrap();
        assert_eq!(b.checkout_tip().content.to_string(), "héllo 世界 🦀");
    }
}
