//! LEB128 variable-length integers ("small numbers in one byte, larger
//! numbers in two bytes, etc." — paper §3.8).

/// Encoding error kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended in the middle of a value.
    UnexpectedEof,
    /// A varint ran longer than 10 bytes (not a valid u64).
    Overlong,
    /// A checksum or structural check failed.
    Corrupt,
    /// The magic header was wrong.
    BadMagic,
    /// Content was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            DecodeError::UnexpectedEof => "unexpected end of input",
            DecodeError::Overlong => "overlong varint",
            DecodeError::Corrupt => "corrupt data (checksum or structure)",
            DecodeError::BadMagic => "bad magic header",
            DecodeError::BadUtf8 => "invalid UTF-8 content",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for DecodeError {}

/// Appends `value` as LEB128.
pub fn push_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends a usize as LEB128.
pub fn push_usize(out: &mut Vec<u8>, value: usize) {
    push_u64(out, value as u64);
}

/// Appends a signed value with zigzag encoding (small magnitudes stay
/// small).
pub fn push_i64(out: &mut Vec<u8>, value: i64) {
    push_u64(out, ((value << 1) ^ (value >> 63)) as u64);
}

/// Reads a LEB128 value, advancing `input`.
///
/// Rejects every encoding [`push_u64`] cannot produce: values longer than
/// 10 bytes, 10-byte values whose final byte carries bits past bit 63
/// (they would silently overflow the `u64`), and non-canonical
/// zero-extended forms (a continuation byte followed by `0x00`). Each
/// `u64` therefore has exactly one accepted byte sequence — decode is a
/// partial inverse of encode, never a lossy one.
pub fn read_u64(input: &mut &[u8]) -> Result<u64, DecodeError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let (&byte, rest) = input.split_first().ok_or(DecodeError::UnexpectedEof)?;
        *input = rest;
        if shift >= 64 {
            return Err(DecodeError::Overlong);
        }
        if shift == 63 && byte & !0x01 != 0 {
            // The 10th byte holds only bit 63; anything above overflows
            // (and a continuation bit would exceed 10 bytes anyway).
            return Err(DecodeError::Overlong);
        }
        if byte == 0 && shift > 0 {
            // A zero final byte after a continuation byte is a
            // non-canonical (zero-extended) encoding.
            return Err(DecodeError::Overlong);
        }
        value |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Reads a usize.
pub fn read_usize(input: &mut &[u8]) -> Result<usize, DecodeError> {
    Ok(read_u64(input)? as usize)
}

/// Reads a zigzag-encoded signed value.
pub fn read_i64(input: &mut &[u8]) -> Result<i64, DecodeError> {
    let raw = read_u64(input)?;
    Ok(((raw >> 1) as i64) ^ -((raw & 1) as i64))
}

/// Reads one raw byte, advancing `input` (shared by the wire codecs for
/// version/flag bytes).
pub fn read_u8(input: &mut &[u8]) -> Result<u8, DecodeError> {
    let (&byte, rest) = input.split_first().ok_or(DecodeError::UnexpectedEof)?;
    *input = rest;
    Ok(byte)
}

/// Takes the next `n` raw bytes, advancing `input` (shared by the wire
/// codecs for length-prefixed fields).
pub fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], DecodeError> {
    if input.len() < n {
        return Err(DecodeError::UnexpectedEof);
    }
    let (head, rest) = input.split_at(n);
    *input = rest;
    Ok(head)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u64() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            push_u64(&mut buf, v);
            let mut s = buf.as_slice();
            assert_eq!(read_u64(&mut s).unwrap(), v);
            assert!(s.is_empty());
        }
    }

    #[test]
    fn roundtrip_i64() {
        for v in [0i64, 1, -1, 63, -64, 64, -65, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            push_i64(&mut buf, v);
            let mut s = buf.as_slice();
            assert_eq!(read_i64(&mut s).unwrap(), v);
        }
    }

    #[test]
    fn single_byte_for_small() {
        let mut buf = Vec::new();
        push_u64(&mut buf, 90);
        assert_eq!(buf.len(), 1);
        push_i64(&mut buf, -5);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn eof_detected() {
        let mut s: &[u8] = &[0x80];
        assert_eq!(read_u64(&mut s), Err(DecodeError::UnexpectedEof));
        let mut s: &[u8] = &[];
        assert_eq!(read_u64(&mut s), Err(DecodeError::UnexpectedEof));
    }

    #[test]
    fn overlong_detected() {
        let mut s: &[u8] = &[0x80; 11];
        assert_eq!(read_u64(&mut s), Err(DecodeError::Overlong));
    }

    /// The boundary encodings around the 10-byte limit: `u64::MAX` must
    /// round-trip, while any 10-byte form carrying bits past bit 63 must
    /// be rejected rather than silently truncated.
    #[test]
    fn ten_byte_boundary_encodings() {
        // u64::MAX == nine 0xff continuation bytes + final 0x01 (bit 63).
        let max = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01];
        let mut s: &[u8] = &max;
        assert_eq!(read_u64(&mut s), Ok(u64::MAX));
        assert!(s.is_empty());

        // Same prefix with bit 64 set in the final byte: overflows u64.
        let over = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02];
        let mut s: &[u8] = &over;
        assert_eq!(read_u64(&mut s), Err(DecodeError::Overlong));

        // A final byte with several high bits: pre-fix this truncated to
        // a small value (0x7f << 63 keeps only bit 63).
        let wide = [0x81, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x7f];
        let mut s: &[u8] = &wide;
        assert_eq!(read_u64(&mut s), Err(DecodeError::Overlong));

        // A 10th byte with the continuation bit set never fit in u64.
        let cont = [
            0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x81, 0x00,
        ];
        let mut s: &[u8] = &cont;
        assert_eq!(read_u64(&mut s), Err(DecodeError::Overlong));
    }

    /// Non-canonical zero-extended encodings (e.g. `[0x80, 0x00]` for 0)
    /// are rejected: every value has exactly one accepted byte form.
    #[test]
    fn non_canonical_rejected() {
        for bad in [
            &[0x80u8, 0x00][..],
            &[0x81, 0x00],
            &[0xff, 0x80, 0x00],
            &[0x80, 0x80, 0x00],
        ] {
            let mut s: &[u8] = bad;
            assert_eq!(
                read_u64(&mut s),
                Err(DecodeError::Overlong),
                "accepted non-canonical {bad:02x?}"
            );
        }
        // Plain zero is canonical.
        let mut s: &[u8] = &[0x00];
        assert_eq!(read_u64(&mut s), Ok(0));
    }
}
