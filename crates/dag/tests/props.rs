//! Property tests: the optimised graph algorithms vs. the brute-force
//! [`eg_dag::naive`] oracle, on randomised event graphs.

use eg_dag::naive::{random_graph, NaiveGraph};
use eg_dag::{criticality, Graph, LV};
use eg_rle::HasLength;
use proptest::prelude::*;
use std::collections::HashSet;

/// Picks a plausible frontier out of a naive graph using a seed: a few
/// mutually concurrent events.
fn pick_frontier(g: &NaiveGraph, seed: usize) -> Vec<LV> {
    if g.is_empty() {
        return vec![];
    }
    let mut picks: Vec<LV> = Vec::new();
    let mut x = seed;
    for _ in 0..3 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        picks.push((x >> 33) % g.len());
    }
    // Reduce to maximal elements so it is a real frontier.
    let set: HashSet<LV> = g.events_of(&picks);
    g.frontier_of(&set)
}

fn graph_strategy() -> impl Strategy<Value = (NaiveGraph, Graph)> {
    (0u64..10_000, 1usize..120, 0.0f64..0.8, proptest::bool::ANY).prop_map(
        |(seed, n, branchiness, multi_root)| {
            let naive = random_graph(seed, n, branchiness, multi_root);
            let graph = naive.to_graph();
            (naive, graph)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `frontier_contains` matches set membership of the ancestor closure.
    #[test]
    fn contains_matches_naive((naive, graph) in graph_strategy(), seed in 0usize..1_000_000) {
        let f = pick_frontier(&naive, seed);
        let events = naive.events_of(&f);
        for lv in 0..naive.len() {
            prop_assert_eq!(
                graph.frontier_contains(&f, lv),
                events.contains(&lv),
                "frontier {:?}, lv {}", f, lv
            );
        }
    }

    /// The span-wise diff matches the brute-force set difference.
    #[test]
    fn diff_matches_naive((naive, graph) in graph_strategy(), s1 in 0usize..1_000_000, s2 in 0usize..1_000_000) {
        let a = pick_frontier(&naive, s1);
        let b = pick_frontier(&naive, s2);
        let (exp_a, exp_b) = naive.diff(&a, &b);
        let got = graph.diff(&a, &b);
        let got_a: Vec<LV> = got.only_a.iter().flat_map(|r| r.iter()).collect();
        let got_b: Vec<LV> = got.only_b.iter().flat_map(|r| r.iter()).collect();
        prop_assert_eq!(got_a, exp_a, "only_a mismatch for {:?} vs {:?}", a, b);
        prop_assert_eq!(got_b, exp_b, "only_b mismatch for {:?} vs {:?}", a, b);
    }

    /// Both the standalone sweep and the incrementally maintained critical
    /// versions match the definitional brute force.
    #[test]
    fn criticals_match_naive((naive, graph) in graph_strategy()) {
        let expected = naive.criticals();
        let sweep = criticality(&graph);
        prop_assert_eq!(&sweep, &expected, "sweep vs naive");
        let incremental: Vec<LV> = graph.criticals().iter().flat_map(|r| r.iter()).collect();
        prop_assert_eq!(&incremental, &expected, "incremental vs naive");
    }

    /// `find_dominators` returns exactly the maximal elements.
    #[test]
    fn dominators_match_naive((naive, graph) in graph_strategy(), s in 0usize..1_000_000) {
        prop_assume!(!naive.is_empty());
        let mut x = s;
        let mut picks: Vec<LV> = Vec::new();
        for _ in 0..5 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(99991);
            picks.push((x >> 33) % naive.len());
        }
        let got = graph.find_dominators(&picks);
        let set: HashSet<LV> = picks.iter().copied().collect();
        let expected = naive.frontier_of(&set);
        prop_assert_eq!(got.as_slice(), &expected[..]);
    }

    /// The graph's incrementally maintained frontier matches the naive one.
    #[test]
    fn graph_frontier_matches_naive((naive, graph) in graph_strategy()) {
        prop_assert_eq!(graph.frontier().as_slice(), &naive.frontier()[..]);
    }

    /// `conflict_window(a, b)` returns a base that is critical and below
    /// both versions, with spans exactly `(Events(a) ∪ Events(b)) −
    /// Events(base)`.
    #[test]
    fn conflict_window_is_sound((naive, graph) in graph_strategy(), s1 in 0usize..1_000_000, s2 in 0usize..1_000_000) {
        let a = pick_frontier(&naive, s1);
        let b = pick_frontier(&naive, s2);
        let (base, spans) = graph.conflict_window(&a, &b);

        // Base is critical (or root) and happened before both versions.
        if let Some(c) = base.try_get_single() {
            prop_assert!(graph.is_critical(c));
            prop_assert!(graph.frontier_contains(&a, c) || a.is_empty());
            prop_assert!(graph.frontier_contains(&b, c) || b.is_empty());
        } else {
            prop_assert!(base.is_root());
        }

        // Spans are ascending and disjoint.
        for w in spans.windows(2) {
            prop_assert!(w[0].end < w[1].start);
        }

        // Spans = union of events minus Events(base).
        let mut expected: HashSet<LV> = naive.events_of(&a);
        expected.extend(naive.events_of(&b));
        for e in naive.events_of(&base) {
            expected.remove(&e);
        }
        let got: HashSet<LV> = spans.iter().flat_map(|r| r.iter()).collect();
        prop_assert_eq!(got, expected);
    }

    /// Walk plans visit every event exactly once, and at each step the
    /// prepare version (tracked as a brute-force event set) lands exactly on
    /// the consumed run's parents.
    #[test]
    fn walk_plan_is_sound((naive, graph) in graph_strategy(), s1 in 0usize..1_000_000) {
        let a = pick_frontier(&naive, s1);
        let full = graph.frontier().clone();
        let (base, spans) = graph.conflict_window(&a, &full);
        let plan = eg_dag::walk::plan_walk(&graph, &base, &spans, &spans);

        let expected_total: usize = spans.iter().map(|r| r.len()).sum();
        let total: usize = plan.iter().map(|s| s.consume.len()).sum();
        prop_assert_eq!(total, expected_total);

        // Simulate the prepare version as an event set.
        let mut prepare: HashSet<LV> = naive.events_of(&base);
        let mut seen: HashSet<LV> = HashSet::new();
        for step in &plan {
            for r in &step.retreat {
                for lv in r.iter() {
                    prop_assert!(prepare.remove(&lv), "retreat of absent event {}", lv);
                }
            }
            for r in &step.advance {
                for lv in r.iter() {
                    prop_assert!(prepare.insert(lv), "advance of present event {}", lv);
                    prop_assert!(seen.contains(&lv), "advance of never-applied event {}", lv);
                }
            }
            for lv in step.consume.iter() {
                // The prepare version must equal Events(parents of lv).
                let parents = naive.parents[lv].clone();
                let expected = naive.events_of(&parents);
                prop_assert_eq!(
                    &prepare, &expected,
                    "prepare version wrong before applying {}", lv
                );
                prepare.insert(lv);
                prop_assert!(seen.insert(lv), "event {} consumed twice", lv);
            }
        }
    }
}
