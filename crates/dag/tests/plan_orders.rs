//! Structural validity of walk plans under every branch-ordering policy
//! (paper §3.2, §3.7): whatever the order, a plan must consume every event
//! exactly once, respect causality, and keep its retreat/advance lists
//! consistent with the prepare-version transitions.

use eg_dag::walk::{plan_walk_with_order, PlanOrder};
use eg_dag::{Frontier, Graph, LV};
use eg_rle::DTRange;
use proptest::prelude::*;
use std::collections::HashSet;

/// Builds a random DAG: a few branchy agents occasionally merging.
fn random_graph(seed: u64, steps: usize, branches: usize) -> Graph {
    let mut g = Graph::new();
    let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut rand = move |bound: usize| {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        (rng >> 16) as usize % bound.max(1)
    };
    let mut tips: Vec<Frontier> = vec![Frontier::root(); branches];
    for _ in 0..steps {
        let b = rand(branches);
        let len = 1 + rand(4);
        let start = g.len();
        let span: DTRange = (start..start + len).into();
        // Sometimes merge another branch's tip into ours first.
        if rand(100) < 30 {
            let other = rand(branches);
            let mut merged: Vec<LV> = tips[b].as_slice().to_vec();
            merged.extend_from_slice(tips[other].as_slice());
            let f = Frontier::from_unsorted(&merged);
            let f = g.find_dominators(f.as_slice());
            g.push(f.as_slice(), span);
        } else {
            let parents = tips[b].clone();
            g.push(parents.as_slice(), span);
        }
        tips[b] = Frontier::new_1(span.last());
    }
    g
}

/// Checks one plan for structural soundness.
fn check_plan_sound(g: &Graph, order: PlanOrder) {
    let spans = [DTRange::from(0..g.len())];
    let steps = plan_walk_with_order(g, &Frontier::root(), &spans, &spans, order);

    // 1. Every event consumed exactly once.
    let mut seen: HashSet<LV> = HashSet::new();
    for s in &steps {
        for lv in s.consume.iter() {
            assert!(seen.insert(lv), "event {lv} consumed twice ({order:?})");
        }
    }
    assert_eq!(seen.len(), g.len(), "missing events ({order:?})");

    // 2. Causality: when a run is consumed, all its parents were consumed.
    let mut consumed: HashSet<LV> = HashSet::new();
    for s in &steps {
        let parents = g.parents_of(s.consume.start);
        for &p in parents.iter() {
            assert!(consumed.contains(&p), "run consumed before parent {p}");
        }
        consumed.extend(s.consume.iter());
    }

    // 3. The prepare version transitions match the retreat/advance lists:
    //    simulate the prepare set and verify each step's consume parents
    //    equal the simulated set's frontier.
    let mut prepare: HashSet<LV> = HashSet::new();
    for s in &steps {
        for r in &s.retreat {
            for lv in r.iter() {
                assert!(prepare.remove(&lv), "retreating {lv} not in prepare");
            }
        }
        for a in &s.advance {
            for lv in a.iter() {
                assert!(prepare.insert(lv), "advancing {lv} already in prepare");
            }
        }
        // The prepare set must now be exactly Events(parents of consume).
        let parents = g.parents_of(s.consume.start);
        let expect = events_of(g, parents.as_slice());
        assert_eq!(prepare, expect, "prepare set mismatch ({order:?})");
        // Consume the run.
        prepare.extend(s.consume.iter());
    }
}

/// `Events(V)`: the transitive closure below a version.
fn events_of(g: &Graph, version: &[LV]) -> HashSet<LV> {
    let mut out = HashSet::new();
    let mut stack: Vec<LV> = version.to_vec();
    while let Some(lv) = stack.pop() {
        if !out.insert(lv) {
            continue;
        }
        let (entry, _) = g.entry_for(lv);
        // Events within the run chain linearly.
        if lv > entry.span.start {
            stack.push(lv - 1);
        } else {
            stack.extend(entry.parents.iter().copied());
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn plans_sound_under_every_order(
        seed in any::<u64>(),
        steps in 1usize..30,
        branches in 1usize..4,
    ) {
        let g = random_graph(seed, steps, branches);
        for order in [PlanOrder::SmallestFirst, PlanOrder::LargestFirst, PlanOrder::Arrival] {
            check_plan_sound(&g, order);
        }
    }
}

#[test]
fn orders_differ_on_asymmetric_branches() {
    // Two branches of different sizes: smallest-first and largest-first
    // must visit them in opposite orders.
    let mut g = Graph::new();
    g.push(&[], (0..2).into());
    g.push(&[1], (2..10).into()); // big branch
    g.push(&[1], (10..12).into()); // small branch
    let spans = [DTRange::from(0..12)];
    let small_first = plan_walk_with_order(
        &g,
        &Frontier::root(),
        &spans,
        &spans,
        PlanOrder::SmallestFirst,
    );
    let large_first = plan_walk_with_order(
        &g,
        &Frontier::root(),
        &spans,
        &spans,
        PlanOrder::LargestFirst,
    );
    // Consecutive consumption merges into one step, so compare the step
    // positions of a representative event from each branch.
    let pos_of = |steps: &[eg_dag::walk::WalkStep], lv: LV| -> usize {
        steps
            .iter()
            .position(|s| s.consume.contains(lv))
            .unwrap_or_else(|| panic!("event {lv} not consumed"))
    };
    assert!(
        pos_of(&small_first, 10) < pos_of(&small_first, 2),
        "smallest-first must visit the small branch first"
    );
    assert!(
        pos_of(&large_first, 2) < pos_of(&large_first, 10),
        "largest-first must visit the big branch first"
    );
}
