//! Version algebra on the event graph: ancestry tests, the priority-queue
//! version diff (paper §3.2), dominator reduction, and the conflict window
//! used by partial replay (paper §3.6).

use crate::{Frontier, Graph, LV};
use eg_rle::{DTRange, HasLength};
use std::collections::BinaryHeap;

/// The result of [`Graph::diff`]: the events reachable from exactly one of
/// the two versions.
///
/// Both vectors hold LV ranges in ascending order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DiffResult {
    /// Events in `Events(a) - Events(b)`.
    pub only_a: Vec<DTRange>,
    /// Events in `Events(b) - Events(a)`.
    pub only_b: Vec<DTRange>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Flag {
    OnlyA,
    OnlyB,
    Shared,
}

/// Reusable scratch state for [`Graph::diff_with_scratch`]: the priority
/// queue's backing buffer survives across calls, so a loop diffing many
/// version pairs (the walk planner's per-step retreat/advance computation)
/// performs no per-call allocation.
#[derive(Debug, Default)]
pub struct DiffScratch {
    queue: BinaryHeap<(LV, Flag)>,
}

impl Graph {
    /// Returns `true` if `target` is contained in `Events(frontier)` — that
    /// is, `target` is an entry of the frontier or happened before one.
    pub fn frontier_contains(&self, frontier: &[LV], target: LV) -> bool {
        if frontier.contains(&target) {
            return true;
        }
        let mut queue: BinaryHeap<LV> = frontier.iter().copied().filter(|&v| v > target).collect();
        while let Some(lv) = queue.pop() {
            let (entry, _) = self.entry_for(lv);
            // The run [entry.span.start ..= lv] is a chain of ancestors.
            if entry.span.start <= target {
                return true;
            }
            // Skip any queued items inside this run — they are covered.
            while let Some(&peek) = queue.peek() {
                if peek >= entry.span.start {
                    queue.pop();
                } else {
                    break;
                }
            }
            for &p in entry.parents.iter() {
                if p == target {
                    return true;
                }
                if p > target {
                    queue.push(p);
                }
            }
        }
        false
    }

    /// Returns `true` if `Events(a) ⊆ Events(b)`.
    pub fn frontier_contains_frontier(&self, b: &[LV], a: &[LV]) -> bool {
        a.iter().all(|&v| self.frontier_contains(b, v))
    }

    /// Reduces an arbitrary set of LVs to its maximal elements (the events
    /// not dominated by any other member).
    pub fn find_dominators(&self, lvs: &[LV]) -> Frontier {
        if lvs.len() <= 1 {
            return Frontier::from_unsorted(lvs);
        }
        let mut sorted = lvs.to_vec();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        sorted.dedup();
        let mut out: Vec<LV> = Vec::new();
        for &v in &sorted {
            if !self.frontier_contains(&out, v) {
                out.push(v);
            }
        }
        out.sort_unstable();
        Frontier(out)
    }

    /// The version representing `Events(a) ∪ Events(b)`.
    pub fn version_union(&self, a: &[LV], b: &[LV]) -> Frontier {
        let mut all = a.to_vec();
        all.extend_from_slice(b);
        self.find_dominators(&all)
    }

    /// Computes the events reachable from exactly one of the two versions
    /// (paper §3.2).
    ///
    /// This is the workhorse for moving the prepare version: when the walker
    /// moves from version `a` to version `b`, it retreats `only_a` (in
    /// reverse order) and advances `only_b` (in order).
    ///
    /// The implementation is the paper's priority-queue traversal, operating
    /// on whole runs at a time: pop the greatest unexplored event, consume
    /// the run it terminates, tag it with the side(s) that reach it, and
    /// enqueue the run's parents. It stops as soon as every queued event is
    /// reachable from both sides.
    pub fn diff(&self, a: &[LV], b: &[LV]) -> DiffResult {
        let mut scratch = DiffScratch::default();
        let mut result = DiffResult::default();
        self.diff_with_scratch(a, b, &mut scratch, &mut result.only_a, &mut result.only_b);
        result
    }

    /// [`Graph::diff`] into caller-owned buffers: `only_a` / `only_b` are
    /// cleared and filled (ascending), and `scratch` is recycled, so
    /// repeated diffs allocate nothing once the buffers have grown.
    pub fn diff_with_scratch(
        &self,
        a: &[LV],
        b: &[LV],
        scratch: &mut DiffScratch,
        only_a: &mut Vec<DTRange>,
        only_b: &mut Vec<DTRange>,
    ) {
        let queue = &mut scratch.queue;
        queue.clear();
        only_a.clear();
        only_b.clear();
        let mut num_shared = 0usize;
        for &v in a {
            queue.push((v, Flag::OnlyA));
        }
        for &v in b {
            queue.push((v, Flag::OnlyB));
        }

        // Collected in descending order, reversed before returning.

        fn mark(only_a: &mut Vec<DTRange>, only_b: &mut Vec<DTRange>, flag: Flag, range: DTRange) {
            if range.is_empty() {
                return;
            }
            let list = match flag {
                Flag::OnlyA => only_a,
                Flag::OnlyB => only_b,
                Flag::Shared => return,
            };
            // We emit in descending order; merge with the previous entry when
            // it directly follows this one.
            if let Some(last) = list.last_mut() {
                if last.start == range.end {
                    last.start = range.start;
                    return;
                }
            }
            list.push(range);
        }

        while let Some((mut lv, mut flag)) = queue.pop() {
            if flag == Flag::Shared {
                num_shared -= 1;
            }
            // Absorb other queue entries for the same event.
            while let Some(&(peek_lv, peek_flag)) = queue.peek() {
                if peek_lv != lv {
                    break;
                }
                queue.pop();
                if peek_flag == Flag::Shared {
                    num_shared -= 1;
                }
                if peek_flag != flag {
                    flag = Flag::Shared;
                }
            }
            // If everything left is shared, no more differences exist.
            if flag == Flag::Shared && queue.len() == num_shared {
                break;
            }

            let (entry, _) = self.entry_for(lv);
            let run_start = entry.span.start;

            // Absorb queue entries that fall inside the run [run_start, lv).
            while let Some(&(peek_lv, peek_flag)) = queue.peek() {
                if peek_lv < run_start {
                    break;
                }
                queue.pop();
                if peek_flag == Flag::Shared {
                    num_shared -= 1;
                }
                if peek_flag != flag {
                    // The part of the run above the peeked event belongs to
                    // `flag` alone; below it both sides reach the run.
                    mark(only_a, only_b, flag, (peek_lv + 1..lv + 1).into());
                    lv = peek_lv;
                    flag = Flag::Shared;
                }
            }

            mark(only_a, only_b, flag, (run_start..lv + 1).into());

            for &p in entry.parents.iter() {
                queue.push((p, flag));
                if flag == Flag::Shared {
                    num_shared += 1;
                }
            }
        }

        only_a.reverse();
        only_b.reverse();
    }

    /// Finds the *conflict window* for merging version `b` into version `a`
    /// (paper §3.6).
    ///
    /// Returns `(base, spans)` where `base` is the latest critical version
    /// that happened before both `a` and `b` (or the root version if there
    /// is none), and `spans` are the events of
    /// `(Events(a) ∪ Events(b)) − Events(base)` in ascending LV order.
    ///
    /// The returned base is safe to start a partial replay from: every event
    /// in `spans` happened after `base`, so the walker never needs to
    /// retreat or advance an event from before `base`.
    pub fn conflict_window(&self, a: &[LV], b: &[LV]) -> (Frontier, Vec<DTRange>) {
        // Critical versions form a chain, and a critical version c happened
        // before a frontier V iff max(V) >= c. So the latest critical version
        // before both frontiers is the largest critical <= min(max(a), max(b)).
        let base = match (a.iter().max(), b.iter().max()) {
            (Some(&ma), Some(&mb)) => self.latest_critical_at_or_before(ma.min(mb)),
            _ => None,
        };
        let floor = base.map(|c| c + 1).unwrap_or(0);

        // Collect all events above `floor` reachable from either frontier.
        let mut queue: BinaryHeap<LV> = a
            .iter()
            .chain(b.iter())
            .copied()
            .filter(|&v| v >= floor)
            .collect();
        let mut spans: Vec<DTRange> = Vec::new(); // Descending.
        while let Some(lv) = queue.pop() {
            let (entry, _) = self.entry_for(lv);
            let run_start = entry.span.start.max(floor);
            // Skip queued items covered by this run.
            while let Some(&peek) = queue.peek() {
                if peek >= run_start {
                    queue.pop();
                } else {
                    break;
                }
            }
            let range: DTRange = (run_start..lv + 1).into();
            if let Some(last) = spans.last_mut() {
                if last.start == range.end {
                    last.start = range.start;
                } else {
                    spans.push(range);
                }
            } else {
                spans.push(range);
            }
            if entry.span.start >= floor {
                // We consumed the entire run; explore its parents.
                for &p in entry.parents.iter() {
                    if p >= floor {
                        queue.push(p);
                    }
                }
            }
        }
        spans.reverse();
        (base.map(Frontier::new_1).unwrap_or_default(), spans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the graph from paper Figure 4:
    /// 0:h 1:i (chain), then 2:H / 3:Del branch and 4:Del 5:e 6:y branch off
    /// event 1, merging at 7:!.
    fn fig4() -> Graph {
        let mut g = Graph::new();
        g.push(&[], (0..2).into()); // e1, e2
        g.push(&[1], (2..4).into()); // e3, e4 (capitalise branch)
        g.push(&[1], (4..7).into()); // e5, e6, e7 (hey branch)
        g.push(&[3, 6], (7..8).into()); // e8
        g
    }

    #[test]
    fn contains_basics() {
        let g = fig4();
        assert!(g.frontier_contains(&[7], 0));
        assert!(g.frontier_contains(&[7], 3));
        assert!(g.frontier_contains(&[7], 6));
        assert!(g.frontier_contains(&[3], 1));
        assert!(!g.frontier_contains(&[3], 4));
        assert!(!g.frontier_contains(&[6], 2));
        assert!(g.frontier_contains(&[2, 4], 1));
        assert!(!g.frontier_contains(&[], 0));
    }

    #[test]
    fn dominators() {
        let g = fig4();
        assert_eq!(g.find_dominators(&[0, 1, 2]).as_slice(), &[2]);
        assert_eq!(g.find_dominators(&[3, 6]).as_slice(), &[3, 6]);
        assert_eq!(g.find_dominators(&[3, 6, 7]).as_slice(), &[7]);
        assert_eq!(g.find_dominators(&[2, 4, 1]).as_slice(), &[2, 4]);
        assert_eq!(g.version_union(&[3], &[5]).as_slice(), &[3, 5]);
        assert_eq!(g.version_union(&[3], &[1]).as_slice(), &[3]);
    }

    #[test]
    fn diff_simple_branches() {
        let g = fig4();
        let d = g.diff(&[3], &[6]);
        assert_eq!(d.only_a, vec![DTRange::from(2..4)]);
        assert_eq!(d.only_b, vec![DTRange::from(4..7)]);

        // Walking from {3} (end of branch 1) to {1} (before the branch).
        let d = g.diff(&[3], &[1]);
        assert_eq!(d.only_a, vec![DTRange::from(2..4)]);
        assert_eq!(d.only_b, vec![]);

        // No difference.
        let d = g.diff(&[7], &[7]);
        assert_eq!(d, DiffResult::default());

        // Against root.
        let d = g.diff(&[2], &[]);
        assert_eq!(d.only_a, vec![DTRange::from(0..3)]);
        assert_eq!(d.only_b, vec![]);
    }

    #[test]
    fn diff_overlapping_chain() {
        let mut g = Graph::new();
        g.push(&[], (0..10).into());
        // Versions at two points of the same run.
        let d = g.diff(&[8], &[3]);
        assert_eq!(d.only_a, vec![DTRange::from(4..9)]);
        assert_eq!(d.only_b, vec![]);
        let d = g.diff(&[3], &[8]);
        assert_eq!(d.only_b, vec![DTRange::from(4..9)]);
        assert_eq!(d.only_a, vec![]);
    }

    #[test]
    fn diff_multi_entry_frontiers() {
        let g = fig4();
        let d = g.diff(&[2, 4], &[3, 6]);
        assert_eq!(d.only_a, vec![]);
        assert_eq!(d.only_b, vec![DTRange::from(3..4), DTRange::from(5..7)]);
    }

    #[test]
    fn conflict_window_fig4() {
        let g = fig4();
        // Merging the two branch tips: the latest critical version before
        // both is event 1 (the graph is linear up to there).
        let (base, spans) = g.conflict_window(&[3], &[6]);
        assert_eq!(base.as_slice(), &[1]);
        assert_eq!(spans, vec![DTRange::from(2..7)]);

        // Merging a tip with the root replays everything from the root.
        let (base, spans) = g.conflict_window(&[], &[7]);
        assert!(base.is_root());
        assert_eq!(spans, vec![DTRange::from(0..8)]);
    }

    #[test]
    fn conflict_window_linear() {
        let mut g = Graph::new();
        g.push(&[], (0..10).into());
        // A purely newer version: base is the old tip itself.
        let (base, spans) = g.conflict_window(&[4], &[9]);
        assert_eq!(base.as_slice(), &[4]);
        assert_eq!(spans, vec![DTRange::from(5..10)]);
    }
}
