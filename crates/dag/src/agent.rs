//! [`AgentAssignment`]: the mapping between local versions and globally
//! unique event IDs `(replica, sequence number)` (paper §3.8).

use crate::LV;
use eg_rle::{DTRange, HasLength, KVPair, MergableSpan, RleVec, SplitableSpan};
use std::collections::HashMap;

/// A compact per-replica agent identifier, interned by [`AgentAssignment`].
pub type AgentId = u32;

/// A globally unique event identifier: a replica name plus a per-replica
/// sequence number.
///
/// This is the form in which event references cross the network; locally
/// they are translated to [`LV`]s.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RemoteId {
    /// The replica (agent) that generated the event.
    pub agent: String,
    /// The agent's sequence number for the event (0-based, dense).
    pub seq: usize,
}

/// A run of consecutive sequence numbers from one agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgentSpan {
    /// The interned agent.
    pub agent: AgentId,
    /// The covered sequence numbers.
    pub seq_range: DTRange,
}

/// A run of consecutive event IDs, used when encoding or exchanging spans of
/// events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteIdSpan {
    /// The replica that generated the events.
    pub agent: String,
    /// The covered sequence numbers.
    pub seq_range: DTRange,
}

impl HasLength for AgentSpan {
    fn len(&self) -> usize {
        self.seq_range.len()
    }
}

impl SplitableSpan for AgentSpan {
    fn truncate(&mut self, at: usize) -> Self {
        AgentSpan {
            agent: self.agent,
            seq_range: self.seq_range.truncate(at),
        }
    }
}

impl MergableSpan for AgentSpan {
    fn can_append(&self, other: &Self) -> bool {
        self.agent == other.agent && self.seq_range.can_append(&other.seq_range)
    }

    fn append(&mut self, other: Self) {
        self.seq_range.append(other.seq_range);
    }
}

/// Bidirectional RLE mapping between LVs and `(agent, seq)` event IDs.
///
/// Each agent's sequence numbers are dense from 0. Because people type in
/// runs, both directions collapse to a handful of entries in practice.
#[derive(Debug, Clone, Default)]
pub struct AgentAssignment {
    names: Vec<String>,
    by_name: HashMap<String, AgentId>,
    /// Per agent: seq range → LV range, sorted by seq.
    client_data: Vec<RleVec<KVPair<DTRange>>>,
    /// LV range → agent span, sorted by LV. Covers every assigned LV.
    lv_map: RleVec<KVPair<AgentSpan>>,
}

impl AgentAssignment {
    /// Creates an empty assignment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an agent name, returning its compact ID.
    pub fn get_or_create_agent(&mut self, name: &str) -> AgentId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.names.len() as AgentId;
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        self.client_data.push(RleVec::new());
        id
    }

    /// Looks up an agent by name without creating it.
    pub fn agent_id(&self, name: &str) -> Option<AgentId> {
        self.by_name.get(name).copied()
    }

    /// The name of an interned agent.
    ///
    /// # Panics
    ///
    /// Panics if `agent` was not created by this assignment.
    pub fn agent_name(&self, agent: AgentId) -> &str {
        &self.names[agent as usize]
    }

    /// The number of interned agents.
    pub fn num_agents(&self) -> usize {
        self.names.len()
    }

    /// The total number of assigned LVs.
    pub fn len(&self) -> usize {
        self.lv_map.end_key()
    }

    /// Returns `true` if no LVs have been assigned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The next unused sequence number for `agent`.
    pub fn next_seq_for(&self, agent: AgentId) -> usize {
        self.client_data[agent as usize].end_key()
    }

    /// Assigns the next sequence numbers of `agent` to the LV range `lvs`.
    ///
    /// Returns the assigned sequence range.
    pub fn assign_next(&mut self, agent: AgentId, lvs: DTRange) -> DTRange {
        let seq_start = self.next_seq_for(agent);
        let seqs: DTRange = (seq_start..seq_start + lvs.len()).into();
        self.assign_at(agent, seqs, lvs);
        seqs
    }

    /// Records that `agent`'s sequence numbers `seqs` correspond to the LV
    /// range `lvs` (used when ingesting remote events).
    ///
    /// # Panics
    ///
    /// Panics if the ranges have different lengths, if `lvs` does not append
    /// densely to the assigned LVs, or if any of `seqs` is already assigned.
    pub fn assign_at(&mut self, agent: AgentId, seqs: DTRange, lvs: DTRange) {
        assert_eq!(seqs.len(), lvs.len());
        assert_eq!(lvs.start, self.len(), "LV assignment must be dense");
        let data = &mut self.client_data[agent as usize];
        assert!(
            seqs.start >= data.end_key(),
            "agent sequence numbers must be assigned in order"
        );
        data.push(KVPair(seqs.start, lvs));
        self.lv_map.push(KVPair(
            lvs.start,
            AgentSpan {
                agent,
                seq_range: seqs,
            },
        ));
    }

    /// Maps an LV to its event ID, returning the containing run.
    ///
    /// The returned span starts *at* `lv` (trimmed).
    pub fn lv_to_agent_span(&self, lv: LV) -> AgentSpan {
        let (pair, offset) = self.lv_map.find_with_offset(lv).expect("LV not assigned");
        AgentSpan {
            agent: pair.1.agent,
            seq_range: pair.1.seq_range.suffix(offset),
        }
    }

    /// Maps an LV to a [`RemoteId`].
    pub fn lv_to_remote(&self, lv: LV) -> RemoteId {
        let span = self.lv_to_agent_span(lv);
        RemoteId {
            agent: self.agent_name(span.agent).to_string(),
            seq: span.seq_range.start,
        }
    }

    /// Maps an `(agent, seq)` pair to its LV, if assigned.
    pub fn try_remote_to_lv(&self, agent: AgentId, seq: usize) -> Option<LV> {
        let data = self.client_data.get(agent as usize)?;
        let (pair, offset) = data.find_with_offset(seq)?;
        Some(pair.1.start + offset)
    }

    /// Classifies `seq` for `agent` together with its run extent:
    /// `Ok((lv, len))` when assigned — `lv` is the event's LV and `len`
    /// how many consecutive sequence numbers from `seq` stay inside the
    /// same assigned run — or `Err(gap)` when unassigned, where `gap` is
    /// the number of consecutive unassigned sequence numbers starting at
    /// `seq` (`usize::MAX` when nothing later is assigned).
    ///
    /// Bundle ingestion uses this to classify whole runs as duplicate or
    /// new with one binary search instead of probing every event.
    pub fn seq_extent(&self, agent: AgentId, seq: usize) -> Result<(LV, usize), usize> {
        let Some(data) = self.client_data.get(agent as usize) else {
            return Err(usize::MAX);
        };
        match data.find_index(seq) {
            Ok(idx) => {
                let pair = &data.0[idx];
                let offset = seq - pair.0;
                Ok((pair.1.start + offset, pair.1.len() - offset))
            }
            Err(idx) => match data.0.get(idx) {
                Some(next) => Err(next.0 - seq),
                None => Err(usize::MAX),
            },
        }
    }

    /// Maps a [`RemoteId`] to its LV, if known.
    pub fn remote_id_to_lv(&self, id: &RemoteId) -> Option<LV> {
        let agent = self.agent_id(&id.agent)?;
        self.try_remote_to_lv(agent, id.seq)
    }

    /// The LV of the latest assigned event of `agent` with sequence number
    /// at most `seq`, or `None` if nothing that early is assigned.
    ///
    /// This is the sound interpretation of a peer's claim to hold
    /// `(agent, seq)`: an agent's events form a causal chain, so a peer
    /// holding sequence `seq` holds every earlier one — clamping to what
    /// is assigned locally never credits the peer with an event it lacks.
    pub fn latest_lv_at_or_below(&self, agent: AgentId, seq: usize) -> Option<LV> {
        let data = self.client_data.get(agent as usize)?;
        if data.end_key() == 0 {
            return None;
        }
        let seq = seq.min(data.end_key() - 1);
        match data.find_index(seq) {
            Ok(idx) => {
                let pair = &data.0[idx];
                Some(pair.1.start + (seq - pair.0))
            }
            // In a gap between runs: the last LV of the preceding run.
            Err(idx) => {
                let prev = &data.0[idx.checked_sub(1)?];
                Some(prev.1.start + prev.1.len() - 1)
            }
        }
    }

    /// The per-agent maximum sequence numbers, as remote IDs: a version
    /// vector. Because each agent's events form a causal chain, these
    /// maxima describe *everything* this assignment holds — unlike
    /// causal-frontier tips, which omit every agent that is not a tip.
    pub fn version_vector(&self) -> Vec<RemoteId> {
        self.client_data
            .iter()
            .enumerate()
            .filter_map(|(i, data)| {
                let end = data.end_key();
                if end == 0 {
                    return None;
                }
                Some(RemoteId {
                    agent: self.names[i].clone(),
                    seq: end - 1,
                })
            })
            .collect()
    }

    /// Returns `true` if this assignment knows the given remote event.
    pub fn knows(&self, id: &RemoteId) -> bool {
        self.remote_id_to_lv(id).is_some()
    }

    /// Iterates the LV → agent-span runs in LV order.
    pub fn iter_lv_map(&self) -> impl Iterator<Item = &KVPair<AgentSpan>> {
        self.lv_map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning() {
        let mut a = AgentAssignment::new();
        let x = a.get_or_create_agent("alice");
        let y = a.get_or_create_agent("bob");
        assert_ne!(x, y);
        assert_eq!(a.get_or_create_agent("alice"), x);
        assert_eq!(a.agent_name(y), "bob");
        assert_eq!(a.agent_id("carol"), None);
        assert_eq!(a.num_agents(), 2);
    }

    #[test]
    fn assign_and_lookup() {
        let mut a = AgentAssignment::new();
        let alice = a.get_or_create_agent("alice");
        let bob = a.get_or_create_agent("bob");
        let s = a.assign_next(alice, (0..10).into());
        assert_eq!(s, (0..10).into());
        let s = a.assign_next(bob, (10..15).into());
        assert_eq!(s, (0..5).into());
        let s = a.assign_next(alice, (15..20).into());
        assert_eq!(s, (10..15).into());

        assert_eq!(a.len(), 20);
        let span = a.lv_to_agent_span(12);
        assert_eq!(span.agent, bob);
        assert_eq!(span.seq_range, (2..5).into());
        assert_eq!(
            a.lv_to_remote(17),
            RemoteId {
                agent: "alice".into(),
                seq: 12
            }
        );
        assert_eq!(a.try_remote_to_lv(alice, 3), Some(3));
        assert_eq!(a.try_remote_to_lv(alice, 12), Some(17));
        assert_eq!(a.try_remote_to_lv(bob, 4), Some(14));
        assert_eq!(a.try_remote_to_lv(bob, 5), None);
        assert!(a.knows(&RemoteId {
            agent: "bob".into(),
            seq: 0
        }));
        assert!(!a.knows(&RemoteId {
            agent: "carol".into(),
            seq: 0
        }));
    }

    #[test]
    fn seq_extent_classifies_runs() {
        let mut a = AgentAssignment::new();
        let alice = a.get_or_create_agent("alice");
        let bob = a.get_or_create_agent("bob");
        a.assign_next(alice, (0..10).into());
        a.assign_next(bob, (10..15).into());
        a.assign_at(alice, (20..25).into(), (15..20).into());

        // Inside the first alice run, from an interior offset.
        assert_eq!(a.seq_extent(alice, 3), Ok((3, 7)));
        // In the gap between alice's runs: 10 unassigned seqs (10..20).
        assert_eq!(a.seq_extent(alice, 10), Err(10));
        assert_eq!(a.seq_extent(alice, 19), Err(1));
        // Inside the second (remote-assigned) run.
        assert_eq!(a.seq_extent(alice, 22), Ok((17, 3)));
        // Past everything assigned.
        assert_eq!(a.seq_extent(alice, 25), Err(usize::MAX));
        assert_eq!(a.seq_extent(bob, 5), Err(usize::MAX));
        // An agent id never interned.
        assert_eq!(a.seq_extent(99, 0), Err(usize::MAX));
    }

    #[test]
    fn version_vector_and_clamped_lookup() {
        let mut a = AgentAssignment::new();
        let alice = a.get_or_create_agent("alice");
        let bob = a.get_or_create_agent("bob");
        let carol = a.get_or_create_agent("carol"); // interned, nothing assigned
        a.assign_next(alice, (0..10).into());
        a.assign_next(bob, (10..15).into());
        a.assign_at(alice, (20..25).into(), (15..20).into());

        let vv = a.version_vector();
        assert_eq!(
            vv,
            vec![
                RemoteId {
                    agent: "alice".into(),
                    seq: 24
                },
                RemoteId {
                    agent: "bob".into(),
                    seq: 4
                },
            ]
        );

        // Exact hits.
        assert_eq!(a.latest_lv_at_or_below(alice, 3), Some(3));
        assert_eq!(a.latest_lv_at_or_below(bob, 4), Some(14));
        // Clamped past the end of what is assigned.
        assert_eq!(a.latest_lv_at_or_below(alice, 1000), Some(19));
        assert_eq!(a.latest_lv_at_or_below(bob, 5), Some(14));
        // Inside the 10..20 gap of alice's seqs: last LV of the run below.
        assert_eq!(a.latest_lv_at_or_below(alice, 12), Some(9));
        // Agents with no assigned events.
        assert_eq!(a.latest_lv_at_or_below(carol, 0), None);
        assert_eq!(a.latest_lv_at_or_below(99, 7), None);
    }

    #[test]
    fn runs_merge() {
        let mut a = AgentAssignment::new();
        let alice = a.get_or_create_agent("alice");
        a.assign_next(alice, (0..5).into());
        a.assign_next(alice, (5..9).into());
        // Both directions should have merged into single runs.
        assert_eq!(a.iter_lv_map().count(), 1);
        assert_eq!(a.lv_to_agent_span(0).seq_range, (0..9).into());
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn non_dense_lv_panics() {
        let mut a = AgentAssignment::new();
        let alice = a.get_or_create_agent("alice");
        a.assign_at(alice, (0..3).into(), (5..8).into());
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn out_of_order_seq_panics() {
        let mut a = AgentAssignment::new();
        let alice = a.get_or_create_agent("alice");
        a.assign_at(alice, (5..8).into(), (0..3).into());
        a.assign_at(alice, (0..3).into(), (3..6).into());
    }
}
