//! [`Graph`]: run-length encoded storage of the event graph's parent
//! relation.

use crate::{Frontier, LV};
use eg_rle::{DTRange, HasLength, HasRleKey, MergableSpan, RleVec, SplitableSpan};

/// One run-length encoded entry of the event graph.
///
/// Events `span.start .. span.end` form a linear chain: `span.start` has
/// parents `parents`, and each subsequent event's sole parent is its
/// predecessor. Human editing histories are dominated by such runs, so a
/// graph with a million events usually has only a handful of entries
/// (paper §2.2, Table 1 "graph runs").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphEntry {
    /// The range of LVs in this run.
    pub span: DTRange,
    /// Parents of the *first* event of the run.
    pub parents: Frontier,
}

impl HasLength for GraphEntry {
    fn len(&self) -> usize {
        self.span.len()
    }
}

impl HasRleKey for GraphEntry {
    fn rle_key(&self) -> usize {
        self.span.start
    }
}

impl MergableSpan for GraphEntry {
    fn can_append(&self, other: &Self) -> bool {
        self.span.can_append(&other.span) && other.parents.as_slice() == [self.span.last()]
    }

    fn append(&mut self, other: Self) {
        self.span.append(other.span);
    }
}

impl SplitableSpan for GraphEntry {
    fn truncate(&mut self, at: usize) -> Self {
        let rem_span = self.span.truncate(at);
        GraphEntry {
            parents: Frontier::new_1(rem_span.start - 1),
            span: rem_span,
        }
    }
}

/// The event graph: a DAG over LVs, stored as RLE runs.
///
/// The graph is append-only and grows monotonically (paper §2.2). New events
/// must be assigned LVs greater than all of their parents — which is always
/// possible because causal delivery means parents arrive first.
///
/// The graph incrementally maintains its own frontier (the current version)
/// and the set of *critical versions* (paper §3.5): versions `{v}` that
/// partition the graph into a past that entirely happened before a future.
/// Critical versions form a chain, and a version can stop being critical
/// when a concurrent event arrives; both facts are exploited to maintain
/// them in amortised O(1) per appended run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Graph {
    pub(crate) entries: RleVec<GraphEntry>,
    /// LVs of events with no parents (graph roots). Kept for walk planning.
    pub(crate) root_events: Vec<LV>,
    /// The graph's current version (events with no children).
    pub(crate) frontier: Frontier,
    /// Ascending runs of LVs `v` such that `{v}` is a critical version.
    pub(crate) criticals: RleVec<DTRange>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// The number of events in the graph.
    ///
    /// Since LVs are dense, this is also the next LV to be assigned.
    pub fn len(&self) -> usize {
        self.entries.end_key()
    }

    /// Returns `true` if the graph has no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The number of RLE entries (linear runs) in the graph.
    pub fn num_entries(&self) -> usize {
        self.entries.num_entries()
    }

    /// Iterates the RLE entries of the graph in LV order.
    pub fn iter(&self) -> impl Iterator<Item = &GraphEntry> {
        self.entries.iter()
    }

    /// The ascending runs of critical versions (paper §3.5), for
    /// storage-image serialisation.
    pub fn criticals_runs(&self) -> &[DTRange] {
        &self.criticals.0
    }

    /// Returns `true` if the events `[from..len)` form one linear chain
    /// hanging off exactly `version` — i.e. they sequentially extend the
    /// graph-as-of-`version`, with nothing concurrent to them.
    ///
    /// The cached-load path uses this to decide whether replaying the
    /// post-checkpoint tail needs tracker state from before the
    /// checkpoint (concurrent tail) or can skip restoring it entirely
    /// (sequential tail: transforming the tail against nothing is the
    /// identity, so the events apply to the document as-is).
    pub fn is_sequential_extension(&self, from: LV, version: &[LV]) -> bool {
        if from >= self.len() {
            return self.frontier.as_slice() == version;
        }
        let Ok(start_idx) = self.entries.find_index(from) else {
            return false;
        };
        let first = &self.entries.0[start_idx];
        if first.span.start < from {
            // `from` lands inside a chain entry, so the tail's first
            // event implicitly has its predecessor as sole parent.
            if version != [from - 1] {
                return false;
            }
        } else if first.parents.as_slice() != version {
            return false;
        }
        // Every later entry must chain directly onto the one before it
        // (entries are dense in LV order, so `span.start - 1` is exactly
        // the previous entry's last event).
        self.entries.0[start_idx + 1..]
            .iter()
            .all(|e| e.parents.as_slice() == [e.span.start - 1])
    }

    /// Reassembles a graph from parts previously taken from an identical
    /// graph (`iter()`, `frontier()`, `criticals_runs()`) — the
    /// storage-image restore path.
    ///
    /// Unlike [`Graph::push`], nothing is re-derived per entry: no
    /// dominator reduction, no frontier advance, no criticals
    /// maintenance. The caller must have structurally validated the parts
    /// (dense spans from 0, parents sorted strictly ascending and below
    /// their span, frontier/criticals in range); deeper invariants —
    /// parents mutually concurrent, `frontier`/`criticals` matching what
    /// incremental maintenance would have produced — are trusted, which
    /// is why this is only fed from CRC-verified local storage. Root
    /// events are recomputed here (entries with no parents).
    pub fn from_parts(
        entries: Vec<GraphEntry>,
        frontier: Frontier,
        criticals: Vec<DTRange>,
    ) -> Self {
        let root_events = entries
            .iter()
            .filter(|e| e.parents.is_root())
            .map(|e| e.span.start)
            .collect();
        Graph {
            entries: RleVec(entries),
            root_events,
            frontier,
            criticals: RleVec(criticals),
        }
    }

    /// The graph's current version: the set of events with no children.
    pub fn frontier(&self) -> &Frontier {
        &self.frontier
    }

    /// Appends a run of events with the given parents.
    ///
    /// The events `span` form a linear chain whose first event has parents
    /// `parents`. Parents are dominator-reduced before storage, keeping the
    /// graph transitively reduced (paper §2.2).
    ///
    /// # Panics
    ///
    /// Panics if `span` does not start at [`Graph::len`] (LVs are dense and
    /// append-only) or if any parent is not an earlier event.
    pub fn push(&mut self, parents: &[LV], span: DTRange) {
        assert_eq!(span.start, self.len(), "graph LVs must be dense");
        assert!(!span.is_empty());
        for &p in parents {
            assert!(p < span.start, "parents must precede the new events");
        }
        let parents = self.find_dominators(parents);
        if parents.is_empty() {
            self.root_events.push(span.start);
        }

        // Maintain critical versions (§3.5).
        //
        // Condition B (every event after a critical `c` is a descendant of
        // `c`) is retroactively broken by the edges this push introduces:
        // each edge `(p, span.start)` makes any `c` with `p < c < span.start`
        // non-critical, and a new root makes everything before it
        // non-critical. Criticality never comes back, so truncation suffices.
        if parents.is_empty() {
            self.criticals = RleVec::new();
        } else {
            let min_parent = *parents.iter().min().unwrap();
            self.truncate_criticals_above(min_parent);
        }
        // Condition A (every event up to `v` is an ancestor of `v`) holds
        // for each event of the new run iff the run descends from the whole
        // current frontier.
        if self.frontier.iter().all(|v| parents.contains_entry(*v)) {
            self.criticals.push(span);
        }

        self.frontier.advance_by(span.last(), &parents);
        self.entries.push(GraphEntry { span, parents });
    }

    /// Drops recorded critical versions greater than `keep_max`.
    fn truncate_criticals_above(&mut self, keep_max: LV) {
        let v = &mut self.criticals.0;
        while let Some(last) = v.last_mut() {
            if last.start > keep_max {
                v.pop();
            } else {
                if last.end > keep_max + 1 {
                    last.end = keep_max + 1;
                }
                break;
            }
        }
    }

    /// Returns `true` if `{lv}` is a critical version of the current graph.
    pub fn is_critical(&self, lv: LV) -> bool {
        self.criticals.contains_key(lv)
    }

    /// The largest critical version `c <= lv`, if any.
    pub fn latest_critical_at_or_before(&self, lv: LV) -> Option<LV> {
        match self.criticals.find_index(lv) {
            Ok(_) => Some(lv),
            Err(idx) => {
                if idx == 0 {
                    None
                } else {
                    Some(self.criticals.0[idx - 1].last())
                }
            }
        }
    }

    /// The ascending runs of critical versions.
    pub fn criticals(&self) -> &RleVec<DTRange> {
        &self.criticals
    }

    /// The parents of a single event.
    pub fn parents_of(&self, lv: LV) -> Frontier {
        let (entry, offset) = self.entries.find_with_offset(lv).expect("LV out of bounds");
        if offset == 0 {
            entry.parents.clone()
        } else {
            Frontier::new_1(lv - 1)
        }
    }

    /// The entry (linear run) containing `lv`, with `lv`'s offset within it.
    pub fn entry_for(&self, lv: LV) -> (&GraphEntry, usize) {
        self.entries.find_with_offset(lv).expect("LV out of bounds")
    }

    /// LVs of the events with no parents.
    pub fn root_events(&self) -> &[LV] {
        &self.root_events
    }

    /// Iterates the (possibly trimmed) entries covering `range`.
    pub fn iter_range(&self, range: DTRange) -> impl Iterator<Item = GraphEntry> + '_ {
        self.entries.iter_range(range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        // 0-1-2 (chain), 3-4 branches off 0, 5 merges {2, 4}.
        let mut g = Graph::new();
        g.push(&[], (0..3).into());
        g.push(&[0], (3..5).into());
        g.push(&[2, 4], (5..6).into());
        g
    }

    #[test]
    fn push_and_query() {
        let g = sample();
        assert_eq!(g.len(), 6);
        assert_eq!(g.num_entries(), 3);
        assert_eq!(g.parents_of(0), Frontier::root());
        assert_eq!(g.parents_of(1), Frontier::new_1(0));
        assert_eq!(g.parents_of(3), Frontier::new_1(0));
        assert_eq!(g.parents_of(4), Frontier::new_1(3));
        assert_eq!(g.parents_of(5), Frontier::from_unsorted(&[2, 4]));
        assert_eq!(g.root_events(), &[0]);
    }

    #[test]
    fn chains_merge() {
        let mut g = Graph::new();
        g.push(&[], (0..2).into());
        g.push(&[1], (2..5).into()); // continues the chain: should merge
        assert_eq!(g.num_entries(), 1);
        assert_eq!(g.len(), 5);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn non_dense_push_panics() {
        let mut g = Graph::new();
        g.push(&[], (1..2).into());
    }

    #[test]
    #[should_panic(expected = "precede")]
    fn future_parent_panics() {
        let mut g = Graph::new();
        g.push(&[], (0..1).into());
        g.push(&[5], (1..2).into());
    }

    #[test]
    fn entry_split_semantics() {
        let mut e = GraphEntry {
            span: (10..20).into(),
            parents: Frontier::from_unsorted(&[3, 7]),
        };
        let tail = e.truncate(4);
        assert_eq!(e.span, (10..14).into());
        assert_eq!(tail.span, (14..20).into());
        assert_eq!(tail.parents, Frontier::new_1(13));
        // And they can re-merge.
        let mut e2 = e.clone();
        assert!(e2.can_append(&tail));
        e2.append(tail);
        assert_eq!(e2.span, (10..20).into());
    }

    #[test]
    fn sequential_extension() {
        // 0-1-2, 3-4 off 0, 5 merges {2,4}, then a chain 6-7-8 at the tip.
        let mut g = sample();
        g.push(&[5], (6..9).into());
        // The chain tail is sequential from the merge point…
        assert!(g.is_sequential_extension(6, &[5]));
        // …and from inside the chain (implicit predecessor parent).
        assert!(g.is_sequential_extension(7, &[6]));
        // `from` at the end: only the exact frontier matches.
        assert!(g.is_sequential_extension(9, &[8]));
        assert!(!g.is_sequential_extension(9, &[5]));
        // Wrong hang-off point.
        assert!(!g.is_sequential_extension(6, &[2]));
        assert!(!g.is_sequential_extension(7, &[5]));
        // A tail containing concurrency (3..6 includes the branch 3-4
        // concurrent with 1-2) is not sequential from anywhere.
        assert!(!g.is_sequential_extension(3, &[2]));
        assert!(!g.is_sequential_extension(0, &[]));
        // Whole-graph linear history IS sequential from the root.
        let mut lin = Graph::new();
        lin.push(&[], (0..4).into());
        lin.push(&[3], (4..6).into());
        assert!(lin.is_sequential_extension(0, &[]));
        assert!(lin.is_sequential_extension(4, &[3]));
    }

    #[test]
    fn iter_range_trims() {
        let g = sample();
        let got: Vec<GraphEntry> = g.iter_range((1..4).into()).collect();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].span, (1..3).into());
        assert_eq!(got[0].parents, Frontier::new_1(0));
        assert_eq!(got[1].span, (3..4).into());
        assert_eq!(got[1].parents, Frontier::new_1(0));
    }
}
