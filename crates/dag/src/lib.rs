//! Event graph (causal DAG) substrate for the Eg-walker suite.
//!
//! An *event graph* (paper §2.2) is a DAG where each node is an editing event
//! with a unique ID and a set of parent event IDs. This crate stores and
//! queries such graphs:
//!
//! * Events are identified by dense **local versions** ([`LV`]): integers
//!   assigned in arrival order, which is always a topological order (parents
//!   precede children). Remote IDs `(replica, seq)` map to LVs via
//!   [`AgentAssignment`].
//! * [`Graph`] stores the parent relation, run-length encoded: a linear run
//!   of events (each parented on its predecessor) is a single entry.
//! * [`Frontier`] is a *version*: the set of maximal events of a causally
//!   closed set (paper §2.3).
//! * [`Graph::diff`] computes the version difference used to retreat and
//!   advance the prepare version (paper §3.2).
//! * [`Graph::find_conflicting`] finds the conflict window replayed on merge
//!   (paper §3.6).
//! * [`criticality`] finds the critical versions at which Eg-walker may clear
//!   its internal state (paper §3.5).
//! * [`walk`] plans a branch-consecutive traversal of a set of events,
//!   emitting retreat/advance/apply steps (paper §3.2, §3.7).

mod agent;
mod critical;
mod diff;
mod frontier;
mod graph;
pub mod naive;
pub mod walk;

pub use agent::{AgentAssignment, AgentId, AgentSpan, RemoteId, RemoteIdSpan};
pub use critical::criticality;
pub use diff::DiffResult;
pub use frontier::Frontier;
pub use graph::{Graph, GraphEntry};

/// A *local version*: the dense integer this replica assigned to an event.
///
/// LVs are local — different replicas may assign different LVs to the same
/// event. They are assigned in arrival order, so `a < b` whenever `a`
/// happened before `b` (but not conversely).
pub type LV = usize;
