//! Brute-force event graph model, used as a test oracle.
//!
//! [`NaiveGraph`] stores one parent list per event and answers every query
//! by materialising ancestor sets. It is hopelessly slow and that is the
//! point: the optimised algorithms in this crate (and the walker built on
//! them) are property-tested against it.

use crate::{Frontier, Graph, LV};
use std::collections::HashSet;

/// A plain one-`Vec`-per-event event graph.
#[derive(Debug, Clone, Default)]
pub struct NaiveGraph {
    /// `parents[i]` are the (dominator-reduced) parents of event `i`.
    pub parents: Vec<Vec<LV>>,
}

impl NaiveGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// The number of events.
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// Returns `true` if the graph has no events.
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// Adds an event with the given parents, returning its LV.
    ///
    /// Parents are dominator-reduced so the graph stays transitively
    /// reduced.
    pub fn add(&mut self, parents: &[LV]) -> LV {
        let lv = self.parents.len();
        let mut reduced: Vec<LV> = Vec::new();
        for &p in parents {
            assert!(p < lv);
            let dominated = parents
                .iter()
                .any(|&q| q != p && self.ancestors(q).contains(&p));
            if !dominated && !reduced.contains(&p) {
                reduced.push(p);
            }
        }
        reduced.sort_unstable();
        self.parents.push(reduced);
        lv
    }

    /// The ancestor closure of `lv`, including `lv` itself.
    pub fn ancestors(&self, lv: LV) -> HashSet<LV> {
        let mut out = HashSet::new();
        let mut stack = vec![lv];
        while let Some(v) = stack.pop() {
            if out.insert(v) {
                stack.extend(self.parents[v].iter().copied());
            }
        }
        out
    }

    /// `Events(frontier)`: everything that happened at or before the
    /// version.
    pub fn events_of(&self, frontier: &[LV]) -> HashSet<LV> {
        let mut out = HashSet::new();
        for &v in frontier {
            out.extend(self.ancestors(v));
        }
        out
    }

    /// Brute-force version difference.
    pub fn diff(&self, a: &[LV], b: &[LV]) -> (Vec<LV>, Vec<LV>) {
        let ea = self.events_of(a);
        let eb = self.events_of(b);
        let mut only_a: Vec<LV> = ea.difference(&eb).copied().collect();
        let mut only_b: Vec<LV> = eb.difference(&ea).copied().collect();
        only_a.sort_unstable();
        only_b.sort_unstable();
        (only_a, only_b)
    }

    /// Brute-force critical versions, straight from the paper's definition:
    /// `{v}` is critical iff every event is `<= v` or a descendant of `v`.
    pub fn criticals(&self) -> Vec<LV> {
        (0..self.len())
            .filter(|&v| {
                let anc_v = self.ancestors(v);
                (0..self.len()).all(|e| anc_v.contains(&e) || self.ancestors(e).contains(&v))
            })
            .collect()
    }

    /// The frontier (maximal events) of an arbitrary event set.
    pub fn frontier_of(&self, events: &HashSet<LV>) -> Vec<LV> {
        let mut out: Vec<LV> = events
            .iter()
            .copied()
            .filter(|&v| {
                !events
                    .iter()
                    .any(|&w| w != v && self.ancestors(w).contains(&v))
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Converts to the optimised [`Graph`] representation.
    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::new();
        for (lv, parents) in self.parents.iter().enumerate() {
            g.push(parents, (lv..lv + 1).into());
        }
        g
    }

    /// The version of the whole graph.
    pub fn frontier(&self) -> Frontier {
        let all: HashSet<LV> = (0..self.len()).collect();
        Frontier(self.frontier_of(&all))
    }
}

/// Deterministically generates a random-but-plausible event graph.
///
/// `branchiness` in `[0.0, 1.0]` controls how often the generator forks or
/// merges instead of extending a tip; 0.0 yields a linear chain. The
/// generator occasionally (rarely) creates extra roots when `multi_root` is
/// set.
pub fn random_graph(
    seed: u64,
    num_events: usize,
    branchiness: f64,
    multi_root: bool,
) -> NaiveGraph {
    // A tiny, dependency-free xorshift PRNG — the graph shape only needs to
    // be deterministic, not statistically strong.
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let next_u64 = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut next_f64 = {
        let mut n = next_u64;
        move || (n() >> 11) as f64 / (1u64 << 53) as f64
    };

    let mut g = NaiveGraph::new();
    let mut tips: Vec<LV> = Vec::new();
    for _ in 0..num_events {
        let roll = next_f64();
        if g.is_empty() {
            g.add(&[]);
            tips = vec![0];
            continue;
        }
        if multi_root && roll < 0.02 {
            let lv = g.add(&[]);
            tips.push(lv);
        } else if roll < branchiness * 0.5 {
            // Branch: extend a random *earlier* event (not necessarily a tip).
            let base = (next_f64() * g.len() as f64) as usize % g.len();
            let lv = g.add(&[base]);
            tips.retain(|&t| t != base);
            tips.push(lv);
        } else if roll < branchiness && tips.len() >= 2 {
            // Merge: combine two or three random tips.
            let mut parents: Vec<LV> = Vec::new();
            let count = 2 + (next_f64() * 2.0) as usize % 2;
            for _ in 0..count.min(tips.len()) {
                let i = (next_f64() * tips.len() as f64) as usize % tips.len();
                parents.push(tips[i]);
            }
            parents.sort_unstable();
            parents.dedup();
            let lv = g.add(&parents);
            tips.retain(|t| !parents.contains(t));
            tips.push(lv);
        } else {
            // Chain: extend a random tip.
            let i = (next_f64() * tips.len() as f64) as usize % tips.len();
            let base = tips[i];
            let lv = g.add(&[base]);
            tips.retain(|&t| t != base);
            tips.push(lv);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_basics() {
        let mut g = NaiveGraph::new();
        g.add(&[]);
        g.add(&[0]);
        g.add(&[0]);
        g.add(&[1, 2]);
        assert_eq!(g.ancestors(3), [0, 1, 2, 3].into_iter().collect());
        assert_eq!(g.criticals(), vec![0, 3]);
        assert_eq!(g.frontier().as_slice(), &[3]);
        let (a, b) = g.diff(&[1], &[2]);
        assert_eq!(a, vec![1]);
        assert_eq!(b, vec![2]);
    }

    #[test]
    fn add_reduces_parents() {
        let mut g = NaiveGraph::new();
        g.add(&[]);
        g.add(&[0]);
        // Parent 0 is an ancestor of 1; it must be dropped.
        g.add(&[0, 1]);
        assert_eq!(g.parents[2], vec![1]);
    }

    #[test]
    fn generator_is_deterministic_and_valid() {
        let g1 = random_graph(42, 80, 0.4, true);
        let g2 = random_graph(42, 80, 0.4, true);
        assert_eq!(g1.parents, g2.parents);
        assert_eq!(g1.len(), 80);
        for (lv, ps) in g1.parents.iter().enumerate() {
            for &p in ps {
                assert!(p < lv);
            }
        }
        // Branchy seeds actually branch.
        assert!(g1.parents.iter().any(|p| p.len() > 1));
    }

    #[test]
    fn generator_zero_branchiness_is_linear() {
        let g = random_graph(7, 50, 0.0, false);
        let opt = g.to_graph();
        assert_eq!(opt.num_entries(), 1);
    }
}
