//! Walk planning: topologically sorting a set of events so that branches
//! stay consecutive, and computing the retreat/advance lists between
//! consecutive runs (paper §3.2, §3.7).

use crate::{Frontier, Graph, GraphEntry, LV};
use eg_rle::{DTRange, HasLength, RleVec};
use std::collections::BTreeSet;

/// One step of a planned walk over the event graph.
///
/// To process the step: retreat every event of `retreat` from the prepare
/// version, advance every event of `advance`, then apply the events of
/// `consume` in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkStep {
    /// Events to remove from the prepare version, as ascending LV ranges.
    pub retreat: Vec<DTRange>,
    /// Events to add back to the prepare version, as ascending LV ranges.
    pub advance: Vec<DTRange>,
    /// The contiguous run of events to apply.
    pub consume: DTRange,
}

/// How concurrent branches are ordered in the topological sort.
///
/// The paper (§3.2, §3.7) picks branches with fewer events first, and §4.3
/// reports that "a poorly chosen traversal order can make this trace as
/// much as 8× slower to merge". The non-default variants exist to measure
/// exactly that ablation; they are never better.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanOrder {
    /// Visit small branches before large ones (the paper's heuristic).
    #[default]
    SmallestFirst,
    /// Visit large branches before small ones (pathological).
    LargestFirst,
    /// Ignore branch sizes; break ties by arrival (LV) order.
    Arrival,
}

/// Plans a walk over `spans` (ascending, causally closed above `base`).
///
/// The plan visits every event of `spans` exactly once, in a topological
/// order chosen to keep linear runs consecutive and to visit small branches
/// before large ones (the paper's §3.2 heuristic, which §4.3 reports matters
/// up to 8× on highly concurrent traces). Between runs it emits the
/// retreat/advance lists computed with [`Graph::diff`].
///
/// `new_ranges` marks the events that are *new* relative to the document
/// being merged into. The plan applies every event outside `new_ranges`
/// before any event inside it (paper §3.6: replay the existing events
/// without output, "finally, apply the new event … and output the
/// transformed operation") — otherwise the emitted indexes would be
/// relative to a document missing some of its text. Pass `spans` itself (or
/// an equal cover) when everything is new (a full replay).
///
/// `base` must be a version dominated by every event in `spans` (the
/// conflict-window base from [`Graph::conflict_window`], or the root).
pub fn plan_walk(
    graph: &Graph,
    base: &Frontier,
    spans: &[DTRange],
    new_ranges: &[DTRange],
) -> Vec<WalkStep> {
    plan_walk_with_order(graph, base, spans, new_ranges, PlanOrder::SmallestFirst)
}

/// [`plan_walk`] with an explicit branch-ordering policy (see
/// [`PlanOrder`]); used by the traversal-order ablation.
pub fn plan_walk_with_order(
    graph: &Graph,
    base: &Frontier,
    spans: &[DTRange],
    new_ranges: &[DTRange],
    order: PlanOrder,
) -> Vec<WalkStep> {
    if spans.is_empty() {
        return Vec::new();
    }
    let window: RleVec<DTRange> = spans.iter().copied().collect();
    let news: RleVec<DTRange> = new_ranges.iter().copied().collect();

    // 1. Collect candidate nodes: graph entries clipped to the window.
    let mut nodes: Vec<GraphEntry> = Vec::new();
    for &span in spans {
        for entry in graph.iter_range(span) {
            nodes.push(entry);
        }
    }

    // 2. Split nodes (a) after every in-window event that has an
    //    out-of-run child, so that parent edges land on run ends, and
    //    (b) at old/new boundaries, so every node is uniformly old or new.
    let mut cuts: Vec<LV> = Vec::new();
    for node in &nodes {
        for &p in node.parents.iter() {
            if window.contains_key(p) {
                cuts.push(p + 1);
            }
        }
    }
    for r in new_ranges {
        cuts.push(r.start);
        cuts.push(r.end);
    }
    cuts.sort_unstable();
    cuts.dedup();
    let mut split_nodes: Vec<GraphEntry> = Vec::with_capacity(nodes.len() + cuts.len());
    let mut cut_iter = cuts.iter().copied().peekable();
    for mut node in nodes {
        while let Some(&c) = cut_iter.peek() {
            if c <= node.span.start {
                cut_iter.next();
            } else {
                break;
            }
        }
        let mut cuts_here: Vec<LV> = Vec::new();
        {
            let mut it = cut_iter.clone();
            while let Some(&c) = it.peek() {
                if c < node.span.end {
                    cuts_here.push(c);
                    it.next();
                } else {
                    break;
                }
            }
        }
        for c in cuts_here {
            use eg_rle::SplitableSpan;
            let rem = node.truncate(c - node.span.start);
            split_nodes.push(node);
            node = rem;
        }
        split_nodes.push(node);
    }
    let nodes = split_nodes;

    // Map: LV → node index (by node start).
    let find_node = |lv: LV| -> usize {
        nodes
            .binary_search_by(|n| {
                if lv < n.span.start {
                    std::cmp::Ordering::Greater
                } else if lv >= n.span.end {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .expect("LV not in window")
    };

    // 3. Build edges and in-degrees.
    let n = nodes.len();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut in_degree: Vec<usize> = vec![0; n];
    for (i, node) in nodes.iter().enumerate() {
        for &p in node.parents.iter() {
            if window.contains_key(p) {
                let pi = find_node(p);
                debug_assert_eq!(nodes[pi].span.last(), p, "edges must land on run ends");
                children[pi].push(i);
                in_degree[i] += 1;
            }
        }
    }
    let is_new: Vec<bool> = nodes
        .iter()
        .map(|nd| news.contains_key(nd.span.start))
        .collect();

    // 4. Branch-size estimates: events that happen after each node
    //    (over-counts shared descendants; it is only a heuristic).
    // The DP over-counts shared descendants, which on diamond-heavy graphs
    // grows exponentially — saturate, it is only an ordering heuristic.
    let mut desc: Vec<u64> = vec![0; n];
    for i in (0..n).rev() {
        let mut d = nodes[i].span.len() as u64;
        for &c in &children[i] {
            d = d.saturating_add(desc[c]);
        }
        desc[i] = d;
    }
    // Rewrite the size key according to the ordering policy; the BTreeSet
    // below always pops the minimum.
    match order {
        PlanOrder::SmallestFirst => {}
        PlanOrder::LargestFirst => {
            for d in desc.iter_mut() {
                *d = u64::MAX - *d;
            }
        }
        PlanOrder::Arrival => desc.fill(0),
    }

    // 5. Kahn's algorithm. Old nodes strictly before new ones; within a
    //    class, smallest-branch-first, preferring direct chain
    //    continuations (zero retreat/advance).
    let mut ready: BTreeSet<(bool, u64, usize)> = BTreeSet::new();
    let mut old_ready = 0usize;
    for i in 0..n {
        if in_degree[i] == 0 {
            ready.insert((is_new[i], desc[i], i));
            if !is_new[i] {
                old_ready += 1;
            }
        }
    }
    let mut steps: Vec<WalkStep> = Vec::with_capacity(n);
    let mut prepare = base.clone();
    let mut consumed = 0usize;
    let mut next_hot: Option<usize> = None;
    while consumed < n {
        let i = if let Some(hot) = next_hot.take() {
            hot
        } else {
            let &(nw, d, i) = ready.iter().next().expect("cycle in event graph");
            ready.remove(&(nw, d, i));
            if !nw {
                old_ready -= 1;
            }
            i
        };
        let node = &nodes[i];
        let d = graph.diff(&prepare, &node.parents);
        let step = WalkStep {
            retreat: d.only_a,
            advance: d.only_b,
            consume: node.span,
        };
        // Merge pure consumption into the previous step.
        if step.retreat.is_empty() && step.advance.is_empty() {
            if let Some(last) = steps.last_mut() {
                if last.consume.end == step.consume.start {
                    last.consume.end = step.consume.end;
                } else {
                    steps.push(step);
                }
            } else {
                steps.push(step);
            }
        } else {
            steps.push(step);
        }
        prepare = Frontier::new_1(node.span.last());
        consumed += 1;

        // Release children; chain into one if allowed.
        let mut best_chain: Option<(bool, u64, usize)> = None;
        for &c in &children[i] {
            in_degree[c] -= 1;
            if in_degree[c] == 0 {
                let key = (is_new[c], desc[c], c);
                let chains = nodes[c].parents.as_slice() == [node.span.last()];
                if chains {
                    match best_chain {
                        Some(bk) if key < bk => {
                            ready.insert(bk);
                            if !bk.0 {
                                old_ready += 1;
                            }
                            best_chain = Some(key);
                        }
                        Some(_) => {
                            ready.insert(key);
                            if !key.0 {
                                old_ready += 1;
                            }
                        }
                        None => best_chain = Some(key),
                    }
                } else {
                    ready.insert(key);
                    if !key.0 {
                        old_ready += 1;
                    }
                }
            }
        }
        if let Some(key) = best_chain {
            // A new-class chain may only be followed once no old nodes wait.
            if key.0 && old_ready > 0 {
                ready.insert(key);
            } else {
                next_hot = Some(key.2);
            }
        }
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 4 example, §3.2: the plan must retreat e3/e4
    /// before the concurrent branch and advance them again before the merge.
    #[test]
    fn fig4_walk_matches_paper() {
        let mut g = Graph::new();
        g.push(&[], (0..2).into()); // e1 e2
        g.push(&[1], (2..4).into()); // e3 e4
        g.push(&[1], (4..7).into()); // e5 e6 e7
        g.push(&[3, 6], (7..8).into()); // e8
        let all = [(0..8).into()];
        let steps = plan_walk(&g, &Frontier::root(), &all, &all);
        assert_eq!(
            steps,
            vec![
                WalkStep {
                    retreat: vec![],
                    advance: vec![],
                    consume: (0..4).into(),
                },
                WalkStep {
                    retreat: vec![(2..4).into()],
                    advance: vec![],
                    consume: (4..7).into(),
                },
                WalkStep {
                    retreat: vec![],
                    advance: vec![(2..4).into()],
                    consume: (7..8).into(),
                },
            ]
        );
    }

    #[test]
    fn linear_graph_single_step() {
        let mut g = Graph::new();
        g.push(&[], (0..100).into());
        let all = [(0..100).into()];
        let steps = plan_walk(&g, &Frontier::root(), &all, &all);
        assert_eq!(
            steps,
            vec![WalkStep {
                retreat: vec![],
                advance: vec![],
                consume: (0..100).into(),
            }]
        );
    }

    #[test]
    fn partial_window() {
        let mut g = Graph::new();
        g.push(&[], (0..5).into());
        g.push(&[4], (5..8).into()); // branch a
        g.push(&[4], (8..10).into()); // branch b
                                      // Window: just the two branches, base at {4}; everything new.
        let spans = [(5..10).into()];
        let steps = plan_walk(&g, &Frontier::new_1(4), &spans, &spans);
        // Small branch (8..10, 2 events) visited before the big one (5..8).
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0].consume, (8..10).into());
        assert!(steps[0].retreat.is_empty() && steps[0].advance.is_empty());
        assert_eq!(steps[1].consume, (5..8).into());
        assert_eq!(steps[1].retreat, vec![DTRange::from(8..10)]);
        assert!(steps[1].advance.is_empty());
    }

    /// Old events must be consumed before new ones, even when the new
    /// branch is smaller.
    #[test]
    fn old_before_new() {
        let mut g = Graph::new();
        g.push(&[], (0..5).into());
        g.push(&[4], (5..11).into()); // old branch (6 events, larger)
        g.push(&[4], (11..12).into()); // new branch (1 event, smaller)
        let spans = [(5..12).into()];
        let steps = plan_walk(&g, &Frontier::new_1(4), &spans, &[(11..12).into()]);
        assert_eq!(steps[0].consume, (5..11).into());
        assert_eq!(steps[1].consume, (11..12).into());
    }

    /// A node mixing old and new events is split at the boundary, and the
    /// new part waits for concurrent old branches.
    #[test]
    fn mixed_node_split_at_emit_boundary() {
        let mut g = Graph::new();
        g.push(&[], (0..4).into()); // old
        g.push(&[3], (4..8).into()); // old prefix 4..6, new suffix 6..8
        g.push(&[3], (8..10).into()); // old concurrent branch
        let spans = [(0..10).into()];
        let steps = plan_walk(&g, &Frontier::root(), &spans, &[(6..8).into()]);
        // The new range 6..8 must come after the old branch 8..10.
        let order: Vec<DTRange> = steps.iter().map(|s| s.consume).collect();
        let pos_new = order.iter().position(|r| r.contains(6)).unwrap();
        let pos_old_branch = order.iter().position(|r| r.contains(8)).unwrap();
        assert!(pos_old_branch < pos_new, "order: {order:?}");
    }

    #[test]
    fn mid_run_fork_splits_nodes() {
        let mut g = Graph::new();
        g.push(&[], (0..6).into());
        g.push(&[2], (6..8).into()); // forks off the middle of the run
        g.push(&[5, 7], (8..9).into());
        let spans = [(0..9).into()];
        let steps = plan_walk(&g, &Frontier::root(), &spans, &spans);
        let total: usize = steps.iter().map(|s| s.consume.len()).sum();
        assert_eq!(total, 9);
        assert!(steps
            .iter()
            .any(|s| s.consume.start == 3 || s.consume.end == 3));
    }

    #[test]
    fn empty_plan() {
        let g = Graph::new();
        assert!(plan_walk(&g, &Frontier::root(), &[], &[]).is_empty());
    }

    #[test]
    fn every_event_consumed_once_random_shape() {
        let mut g = Graph::new();
        g.push(&[], (0..3).into());
        g.push(&[0], (3..5).into());
        g.push(&[1], (5..6).into());
        g.push(&[4, 5], (6..7).into());
        g.push(&[2, 6], (7..10).into());
        let spans = [(0..10).into()];
        let steps = plan_walk(&g, &Frontier::root(), &spans, &[(4..7).into()]);
        let mut seen = [false; 10];
        for s in &steps {
            for lv in s.consume.iter() {
                assert!(!seen[lv], "event {lv} consumed twice");
                seen[lv] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }
}
