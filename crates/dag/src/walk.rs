//! Walk planning: topologically sorting a set of events so that branches
//! stay consecutive, and computing the retreat/advance lists between
//! consecutive runs (paper §3.2, §3.7).
//!
//! The planner is allocation-pooled: [`WalkPlan`] owns every buffer the
//! planning passes need (node pools, CSR edges, diff scratch, the
//! retreat/advance range pool) and recycles them across calls, so a
//! long-lived replica re-planning on every merge performs no per-step and —
//! once warm — no per-plan heap allocation. The convenience functions
//! [`plan_walk`] / [`plan_walk_with_order`] wrap a throwaway [`WalkPlan`]
//! and copy the result out into owned [`WalkStep`]s.

use crate::diff::DiffScratch;
use crate::{Frontier, Graph, LV};
use eg_rle::{DTRange, HasLength, RleVec};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One step of a planned walk over the event graph, in owned form.
///
/// To process the step: retreat every event of `retreat` from the prepare
/// version, advance every event of `advance`, then apply the events of
/// `consume` in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkStep {
    /// Events to remove from the prepare version, as ascending LV ranges.
    pub retreat: Vec<DTRange>,
    /// Events to add back to the prepare version, as ascending LV ranges.
    pub advance: Vec<DTRange>,
    /// The contiguous run of events to apply.
    pub consume: DTRange,
}

/// One step of a planned walk, borrowing its retreat/advance lists from the
/// plan's shared range pool (the zero-copy view [`WalkPlan::iter`] yields).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkStepRef<'a> {
    /// Events to remove from the prepare version, as ascending LV ranges.
    pub retreat: &'a [DTRange],
    /// Events to add back to the prepare version, as ascending LV ranges.
    pub advance: &'a [DTRange],
    /// The contiguous run of events to apply.
    pub consume: DTRange,
}

/// How concurrent branches are ordered in the topological sort.
///
/// The paper (§3.2, §3.7) picks branches with fewer events first, and §4.3
/// reports that "a poorly chosen traversal order can make this trace as
/// much as 8× slower to merge". The non-default variants exist to measure
/// exactly that ablation; they are never better.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanOrder {
    /// Visit small branches before large ones (the paper's heuristic).
    #[default]
    SmallestFirst,
    /// Visit large branches before small ones (pathological).
    LargestFirst,
    /// Ignore branch sizes; break ties by arrival (LV) order.
    Arrival,
}

/// A step in pooled form: half-open index ranges into [`WalkPlan::pool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PlanStep {
    retreat: (u32, u32),
    advance: (u32, u32),
    consume: DTRange,
}

/// Reusable buffers for the planning passes. Every vector is cleared (not
/// dropped) at the start of a plan, so capacity persists across plans.
#[derive(Debug, Default)]
struct PlanScratch {
    /// The window, RLE-merged for `contains_key` queries.
    window: RleVec<DTRange>,
    /// The new-event ranges, RLE-merged.
    news: RleVec<DTRange>,
    /// Sorted LVs at which runs must be split.
    cuts: Vec<LV>,
    /// Node spans after splitting (ascending, disjoint).
    spans: Vec<DTRange>,
    /// Per-node offsets into `parents` (length `n + 1`).
    parents_off: Vec<u32>,
    /// Pooled parent LVs for all nodes.
    parents: Vec<LV>,
    /// CSR offsets into `children` (length `n + 1`).
    children_off: Vec<u32>,
    /// Pooled child node indexes for all nodes.
    children: Vec<u32>,
    /// Per-node write cursor for the CSR fill pass.
    csr_cursor: Vec<u32>,
    in_degree: Vec<u32>,
    /// Branch-size estimates (the ordering heuristic's sort key).
    desc: Vec<u64>,
    is_new: Vec<bool>,
    /// Kahn's ready set, min-popped: `(is_new, size_key, node)`.
    ready: BinaryHeap<Reverse<(bool, u64, u32)>>,
    diff: DiffScratch,
    only_a: Vec<DTRange>,
    only_b: Vec<DTRange>,
    prepare: Frontier,
}

/// A planned walk with pooled storage.
///
/// All retreat/advance ranges of all steps live in one shared `pool`
/// vector; [`WalkPlan::iter`] yields [`WalkStepRef`]s borrowing slices of
/// it. Re-planning through the same `WalkPlan` reuses every internal
/// buffer, which is what makes repeated merges on a long-lived replica
/// allocation-free (the pre-pooled planner allocated ~4 vectors *per step*
/// — the dominant cost on highly concurrent traces).
#[derive(Debug, Default)]
pub struct WalkPlan {
    steps: Vec<PlanStep>,
    pool: Vec<DTRange>,
    scratch: PlanScratch,
}

impl WalkPlan {
    /// Creates an empty plan (no buffers allocated yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// The number of steps in the current plan.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` if the current plan has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The `i`-th step, borrowing from the shared range pool.
    pub fn step(&self, i: usize) -> WalkStepRef<'_> {
        let s = &self.steps[i];
        WalkStepRef {
            retreat: &self.pool[s.retreat.0 as usize..s.retreat.1 as usize],
            advance: &self.pool[s.advance.0 as usize..s.advance.1 as usize],
            consume: s.consume,
        }
    }

    /// Iterates the steps of the current plan in order.
    pub fn iter(&self) -> impl Iterator<Item = WalkStepRef<'_>> {
        (0..self.steps.len()).map(move |i| self.step(i))
    }

    /// Copies the current plan out into owned [`WalkStep`]s.
    pub fn to_steps(&self) -> Vec<WalkStep> {
        self.iter()
            .map(|s| WalkStep {
                retreat: s.retreat.to_vec(),
                advance: s.advance.to_vec(),
                consume: s.consume,
            })
            .collect()
    }

    /// Plans a walk over `spans` (ascending, causally closed above `base`),
    /// replacing any previous plan and recycling all internal buffers.
    ///
    /// The plan visits every event of `spans` exactly once, in a
    /// topological order chosen to keep linear runs consecutive and to
    /// visit small branches before large ones (the paper's §3.2 heuristic,
    /// which §4.3 reports matters up to 8× on highly concurrent traces).
    /// Between runs it emits the retreat/advance lists computed with
    /// [`Graph::diff_with_scratch`].
    ///
    /// `new_ranges` marks the events that are *new* relative to the
    /// document being merged into. The plan applies every event outside
    /// `new_ranges` before any event inside it (paper §3.6: replay the
    /// existing events without output, "finally, apply the new event … and
    /// output the transformed operation") — otherwise the emitted indexes
    /// would be relative to a document missing some of its text. Pass
    /// `spans` itself (or an equal cover) when everything is new (a full
    /// replay).
    ///
    /// `base` must be a version dominated by every event in `spans` (the
    /// conflict-window base from [`Graph::conflict_window`], or the root).
    pub fn plan(
        &mut self,
        graph: &Graph,
        base: &Frontier,
        spans: &[DTRange],
        new_ranges: &[DTRange],
    ) {
        self.plan_with_order(graph, base, spans, new_ranges, PlanOrder::SmallestFirst)
    }

    /// [`WalkPlan::plan`] with an explicit branch-ordering policy (see
    /// [`PlanOrder`]); used by the traversal-order ablation.
    pub fn plan_with_order(
        &mut self,
        graph: &Graph,
        base: &Frontier,
        spans: &[DTRange],
        new_ranges: &[DTRange],
        order: PlanOrder,
    ) {
        let WalkPlan {
            steps,
            pool,
            scratch,
        } = self;
        let PlanScratch {
            window,
            news,
            cuts,
            spans: node_spans,
            parents_off,
            parents,
            children_off,
            children,
            csr_cursor,
            in_degree,
            desc,
            is_new,
            ready,
            diff,
            only_a,
            only_b,
            prepare,
        } = scratch;

        steps.clear();
        pool.clear();
        if spans.is_empty() {
            return;
        }
        window.0.clear();
        news.0.clear();
        for &s in spans {
            window.push(s);
        }
        for &r in new_ranges {
            news.push(r);
        }

        // 1. Collect split points: (a) after every in-window event that has
        //    an out-of-run child, so that parent edges land on run ends, and
        //    (b) at old/new boundaries, so every node is uniformly old or
        //    new. Parents of window-clipped run tails are the preceding
        //    event, whose cut is a no-op (it falls on a node boundary), so
        //    only real run-start parents matter here.
        cuts.clear();
        for &span in spans {
            let mut lv = span.start;
            while lv < span.end {
                let idx = graph
                    .entries
                    .find_index(lv)
                    .expect("window LV not in graph");
                let entry = &graph.entries.0[idx];
                if lv == entry.span.start {
                    for &p in entry.parents.iter() {
                        if window.contains_key(p) {
                            cuts.push(p + 1);
                        }
                    }
                }
                lv = entry.span.end.min(span.end);
            }
        }
        for r in new_ranges {
            cuts.push(r.start);
            cuts.push(r.end);
        }
        cuts.sort_unstable();
        cuts.dedup();

        // 2. Materialise nodes: graph entries clipped to the window and
        //    split at the cuts, as pooled spans + parent lists. A piece
        //    that starts mid-run has its predecessor as sole parent.
        node_spans.clear();
        parents_off.clear();
        parents.clear();
        parents_off.push(0);
        let mut cut_i = 0usize;
        for &span in spans {
            let mut lv = span.start;
            while lv < span.end {
                let idx = graph
                    .entries
                    .find_index(lv)
                    .expect("window LV not in graph");
                let entry = &graph.entries.0[idx];
                let piece_end = entry.span.end.min(span.end);
                while cut_i < cuts.len() && cuts[cut_i] <= lv {
                    cut_i += 1;
                }
                let mut sub_start = lv;
                loop {
                    let sub_end = if cut_i < cuts.len() && cuts[cut_i] < piece_end {
                        let c = cuts[cut_i];
                        cut_i += 1;
                        c
                    } else {
                        piece_end
                    };
                    node_spans.push((sub_start..sub_end).into());
                    if sub_start == entry.span.start {
                        parents.extend_from_slice(entry.parents.as_slice());
                    } else {
                        parents.push(sub_start - 1);
                    }
                    parents_off.push(parents.len() as u32);
                    sub_start = sub_end;
                    if sub_start >= piece_end {
                        break;
                    }
                }
                lv = piece_end;
            }
        }
        let n = node_spans.len();

        // Map: LV → node index (nodes are ascending and disjoint).
        fn find_node(spans: &[DTRange], lv: LV) -> usize {
            spans
                .binary_search_by(|s| {
                    if lv < s.start {
                        std::cmp::Ordering::Greater
                    } else if lv >= s.end {
                        std::cmp::Ordering::Less
                    } else {
                        std::cmp::Ordering::Equal
                    }
                })
                .expect("LV not in window")
        }
        let parents_of = |i: usize| -> std::ops::Range<usize> {
            parents_off[i] as usize..parents_off[i + 1] as usize
        };

        // 3. Build the child edges (CSR: count, prefix-sum, fill) and
        //    in-degrees.
        is_new.clear();
        is_new.extend(node_spans.iter().map(|s| news.contains_key(s.start)));
        children_off.clear();
        children_off.resize(n + 1, 0);
        in_degree.clear();
        in_degree.resize(n, 0);
        for i in 0..n {
            for &p in &parents[parents_of(i)] {
                if window.contains_key(p) {
                    let pi = find_node(node_spans, p);
                    debug_assert_eq!(node_spans[pi].last(), p, "edges must land on run ends");
                    children_off[pi + 1] += 1;
                    in_degree[i] += 1;
                }
            }
        }
        for i in 0..n {
            children_off[i + 1] += children_off[i];
        }
        children.clear();
        children.resize(children_off[n] as usize, 0);
        csr_cursor.clear();
        csr_cursor.extend_from_slice(&children_off[..n]);
        for i in 0..n {
            for &p in &parents[parents_of(i)] {
                if window.contains_key(p) {
                    let pi = find_node(node_spans, p);
                    children[csr_cursor[pi] as usize] = i as u32;
                    csr_cursor[pi] += 1;
                }
            }
        }
        let children_of = |i: usize| -> std::ops::Range<usize> {
            children_off[i] as usize..children_off[i + 1] as usize
        };

        // 4. Branch-size estimates: events that happen after each node.
        // The DP over-counts shared descendants, which on diamond-heavy
        // graphs grows exponentially — saturate, it is only an ordering
        // heuristic.
        desc.clear();
        desc.resize(n, 0);
        for i in (0..n).rev() {
            let mut d = node_spans[i].len() as u64;
            for &c in &children[children_of(i)] {
                d = d.saturating_add(desc[c as usize]);
            }
            desc[i] = d;
        }
        // Rewrite the size key according to the ordering policy; the ready
        // heap below always pops the minimum.
        match order {
            PlanOrder::SmallestFirst => {}
            PlanOrder::LargestFirst => {
                for d in desc.iter_mut() {
                    *d = u64::MAX - *d;
                }
            }
            PlanOrder::Arrival => desc.fill(0),
        }

        // 5. Kahn's algorithm. Old nodes strictly before new ones; within a
        //    class, smallest-branch-first, preferring direct chain
        //    continuations (zero retreat/advance). Each node enters the
        //    ready heap at most once, so min-popping is exact removal.
        ready.clear();
        let mut old_ready = 0usize;
        for i in 0..n {
            if in_degree[i] == 0 {
                ready.push(Reverse((is_new[i], desc[i], i as u32)));
                if !is_new[i] {
                    old_ready += 1;
                }
            }
        }
        prepare.0.clear();
        prepare.0.extend_from_slice(base.as_slice());
        let mut consumed = 0usize;
        let mut next_hot: Option<usize> = None;
        while consumed < n {
            let i = if let Some(hot) = next_hot.take() {
                hot
            } else {
                let Reverse((nw, _, i)) = ready.pop().expect("cycle in event graph");
                if !nw {
                    old_ready -= 1;
                }
                i as usize
            };
            let node_span = node_spans[i];
            graph.diff_with_scratch(prepare, &parents[parents_of(i)], diff, only_a, only_b);
            // Merge pure consumption into the previous step.
            if only_a.is_empty() && only_b.is_empty() {
                match steps.last_mut() {
                    Some(last) if last.consume.end == node_span.start => {
                        last.consume.end = node_span.end;
                    }
                    _ => {
                        let o = pool.len() as u32;
                        steps.push(PlanStep {
                            retreat: (o, o),
                            advance: (o, o),
                            consume: node_span,
                        });
                    }
                }
            } else {
                let r0 = pool.len() as u32;
                pool.extend_from_slice(only_a);
                let r1 = pool.len() as u32;
                pool.extend_from_slice(only_b);
                let a1 = pool.len() as u32;
                steps.push(PlanStep {
                    retreat: (r0, r1),
                    advance: (r1, a1),
                    consume: node_span,
                });
            }
            prepare.replace_with_1(node_span.last());
            consumed += 1;

            // Release children; chain into one if allowed.
            let mut best_chain: Option<(bool, u64, u32)> = None;
            for &c in &children[children_of(i)] {
                let c = c as usize;
                in_degree[c] -= 1;
                if in_degree[c] == 0 {
                    let key = (is_new[c], desc[c], c as u32);
                    let chains = parents[parents_of(c)] == [node_span.last()];
                    if chains {
                        match best_chain {
                            Some(bk) if key < bk => {
                                ready.push(Reverse(bk));
                                if !bk.0 {
                                    old_ready += 1;
                                }
                                best_chain = Some(key);
                            }
                            Some(_) => {
                                ready.push(Reverse(key));
                                if !key.0 {
                                    old_ready += 1;
                                }
                            }
                            None => best_chain = Some(key),
                        }
                    } else {
                        ready.push(Reverse(key));
                        if !key.0 {
                            old_ready += 1;
                        }
                    }
                }
            }
            if let Some(key) = best_chain {
                // A new-class chain may only be followed once no old nodes
                // wait.
                if key.0 && old_ready > 0 {
                    ready.push(Reverse(key));
                } else {
                    next_hot = Some(key.2 as usize);
                }
            }
        }
    }
}

/// Plans a walk over `spans` into owned steps (see [`WalkPlan::plan`]).
///
/// Convenience wrapper building a throwaway [`WalkPlan`]; allocation-
/// sensitive callers (the walker hot path) hold a reusable [`WalkPlan`]
/// instead.
pub fn plan_walk(
    graph: &Graph,
    base: &Frontier,
    spans: &[DTRange],
    new_ranges: &[DTRange],
) -> Vec<WalkStep> {
    plan_walk_with_order(graph, base, spans, new_ranges, PlanOrder::SmallestFirst)
}

/// [`plan_walk`] with an explicit branch-ordering policy (see
/// [`PlanOrder`]); used by the traversal-order ablation.
pub fn plan_walk_with_order(
    graph: &Graph,
    base: &Frontier,
    spans: &[DTRange],
    new_ranges: &[DTRange],
    order: PlanOrder,
) -> Vec<WalkStep> {
    let mut plan = WalkPlan::new();
    plan.plan_with_order(graph, base, spans, new_ranges, order);
    plan.to_steps()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 4 example, §3.2: the plan must retreat e3/e4
    /// before the concurrent branch and advance them again before the merge.
    #[test]
    fn fig4_walk_matches_paper() {
        let mut g = Graph::new();
        g.push(&[], (0..2).into()); // e1 e2
        g.push(&[1], (2..4).into()); // e3 e4
        g.push(&[1], (4..7).into()); // e5 e6 e7
        g.push(&[3, 6], (7..8).into()); // e8
        let all = [(0..8).into()];
        let steps = plan_walk(&g, &Frontier::root(), &all, &all);
        assert_eq!(
            steps,
            vec![
                WalkStep {
                    retreat: vec![],
                    advance: vec![],
                    consume: (0..4).into(),
                },
                WalkStep {
                    retreat: vec![(2..4).into()],
                    advance: vec![],
                    consume: (4..7).into(),
                },
                WalkStep {
                    retreat: vec![],
                    advance: vec![(2..4).into()],
                    consume: (7..8).into(),
                },
            ]
        );
    }

    #[test]
    fn linear_graph_single_step() {
        let mut g = Graph::new();
        g.push(&[], (0..100).into());
        let all = [(0..100).into()];
        let steps = plan_walk(&g, &Frontier::root(), &all, &all);
        assert_eq!(
            steps,
            vec![WalkStep {
                retreat: vec![],
                advance: vec![],
                consume: (0..100).into(),
            }]
        );
    }

    #[test]
    fn partial_window() {
        let mut g = Graph::new();
        g.push(&[], (0..5).into());
        g.push(&[4], (5..8).into()); // branch a
        g.push(&[4], (8..10).into()); // branch b
                                      // Window: just the two branches, base at {4}; everything new.
        let spans = [(5..10).into()];
        let steps = plan_walk(&g, &Frontier::new_1(4), &spans, &spans);
        // Small branch (8..10, 2 events) visited before the big one (5..8).
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0].consume, (8..10).into());
        assert!(steps[0].retreat.is_empty() && steps[0].advance.is_empty());
        assert_eq!(steps[1].consume, (5..8).into());
        assert_eq!(steps[1].retreat, vec![DTRange::from(8..10)]);
        assert!(steps[1].advance.is_empty());
    }

    /// Old events must be consumed before new ones, even when the new
    /// branch is smaller.
    #[test]
    fn old_before_new() {
        let mut g = Graph::new();
        g.push(&[], (0..5).into());
        g.push(&[4], (5..11).into()); // old branch (6 events, larger)
        g.push(&[4], (11..12).into()); // new branch (1 event, smaller)
        let spans = [(5..12).into()];
        let steps = plan_walk(&g, &Frontier::new_1(4), &spans, &[(11..12).into()]);
        assert_eq!(steps[0].consume, (5..11).into());
        assert_eq!(steps[1].consume, (11..12).into());
    }

    /// A node mixing old and new events is split at the boundary, and the
    /// new part waits for concurrent old branches.
    #[test]
    fn mixed_node_split_at_emit_boundary() {
        let mut g = Graph::new();
        g.push(&[], (0..4).into()); // old
        g.push(&[3], (4..8).into()); // old prefix 4..6, new suffix 6..8
        g.push(&[3], (8..10).into()); // old concurrent branch
        let spans = [(0..10).into()];
        let steps = plan_walk(&g, &Frontier::root(), &spans, &[(6..8).into()]);
        // The new range 6..8 must come after the old branch 8..10.
        let order: Vec<DTRange> = steps.iter().map(|s| s.consume).collect();
        let pos_new = order.iter().position(|r| r.contains(6)).unwrap();
        let pos_old_branch = order.iter().position(|r| r.contains(8)).unwrap();
        assert!(pos_old_branch < pos_new, "order: {order:?}");
    }

    #[test]
    fn mid_run_fork_splits_nodes() {
        let mut g = Graph::new();
        g.push(&[], (0..6).into());
        g.push(&[2], (6..8).into()); // forks off the middle of the run
        g.push(&[5, 7], (8..9).into());
        let spans = [(0..9).into()];
        let steps = plan_walk(&g, &Frontier::root(), &spans, &spans);
        let total: usize = steps.iter().map(|s| s.consume.len()).sum();
        assert_eq!(total, 9);
        assert!(steps
            .iter()
            .any(|s| s.consume.start == 3 || s.consume.end == 3));
    }

    #[test]
    fn empty_plan() {
        let g = Graph::new();
        assert!(plan_walk(&g, &Frontier::root(), &[], &[]).is_empty());
    }

    #[test]
    fn every_event_consumed_once_random_shape() {
        let mut g = Graph::new();
        g.push(&[], (0..3).into());
        g.push(&[0], (3..5).into());
        g.push(&[1], (5..6).into());
        g.push(&[4, 5], (6..7).into());
        g.push(&[2, 6], (7..10).into());
        let spans = [(0..10).into()];
        let steps = plan_walk(&g, &Frontier::root(), &spans, &[(4..7).into()]);
        let mut seen = [false; 10];
        for s in &steps {
            for lv in s.consume.iter() {
                assert!(!seen[lv], "event {lv} consumed twice");
                seen[lv] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    /// A reused plan produces identical output to a fresh one, with both
    /// step views agreeing.
    #[test]
    fn reused_plan_matches_fresh() {
        let mut g = Graph::new();
        g.push(&[], (0..3).into());
        g.push(&[0], (3..5).into());
        g.push(&[1], (5..6).into());
        g.push(&[4, 5], (6..7).into());
        g.push(&[2, 6], (7..10).into());
        let spans = [(0..10).into()];
        let mut plan = WalkPlan::new();
        // Warm the buffers on a different window first.
        plan.plan(&g, &Frontier::root(), &[(0..5).into()], &[(0..5).into()]);
        plan.plan(&g, &Frontier::root(), &spans, &[(4..7).into()]);
        let fresh = plan_walk(&g, &Frontier::root(), &spans, &[(4..7).into()]);
        assert_eq!(plan.to_steps(), fresh);
        assert_eq!(plan.len(), fresh.len());
        for (i, (r, o)) in plan.iter().zip(&fresh).enumerate() {
            assert_eq!(r.retreat, &o.retreat[..], "step {i} retreat");
            assert_eq!(r.advance, &o.advance[..], "step {i} advance");
            assert_eq!(r.consume, o.consume, "step {i} consume");
        }
    }
}
