//! [`Frontier`]: a document version, i.e. the maximal events of a causally
//! closed event set (paper §2.3).

use crate::LV;
use std::fmt;
use std::ops::Deref;

/// A document version: a sorted set of mutually concurrent event LVs.
///
/// The version of an event graph `G` is its frontier — the events with no
/// children (paper §2.3). The empty frontier is the *root* version (the
/// empty document, before any event). Frontiers are almost always tiny (one
/// or two entries), since a frontier with `n` entries only arises when `n`
/// mutually concurrent events are merged with no new events in between.
///
/// Invariant: entries are strictly ascending, and (when used with a graph)
/// mutually concurrent. Constructors from unsorted data sort and de-dup;
/// concurrency is the caller's responsibility (use
/// [`crate::Graph::find_dominators`] to reduce an arbitrary set).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Frontier(pub Vec<LV>);

impl Frontier {
    /// The root version: the empty document, before any event.
    pub const fn root() -> Self {
        Self(Vec::new())
    }

    /// A version consisting of a single event.
    pub fn new_1(lv: LV) -> Self {
        Self(vec![lv])
    }

    /// Overwrites this frontier with the single event `lv`, retaining the
    /// backing allocation (the zero-alloc counterpart of [`Frontier::new_1`]
    /// for hot loops that move a version forward run by run).
    pub fn replace_with_1(&mut self, lv: LV) {
        self.0.clear();
        self.0.push(lv); // ALLOC: 1-slot vec reuse, capacity retained
    }

    /// Builds a frontier from unsorted LVs, sorting and de-duplicating.
    pub fn from_unsorted(lvs: &[LV]) -> Self {
        let mut v = lvs.to_vec();
        v.sort_unstable();
        v.dedup();
        Self(v)
    }

    /// Returns `true` if this is the root version.
    pub fn is_root(&self) -> bool {
        self.0.is_empty()
    }

    /// Returns the sole entry if the frontier has exactly one.
    pub fn try_get_single(&self) -> Option<LV> {
        if self.0.len() == 1 {
            Some(self.0[0])
        } else {
            None
        }
    }

    /// Returns `true` if `lv` is one of the frontier's entries.
    pub fn contains_entry(&self, lv: LV) -> bool {
        self.0.binary_search(&lv).is_ok()
    }

    /// Inserts `lv` keeping the entries sorted (no-op if present).
    pub fn insert(&mut self, lv: LV) {
        if let Err(idx) = self.0.binary_search(&lv) {
            self.0.insert(idx, lv);
        }
    }

    /// Removes `lv` if present.
    pub fn remove(&mut self, lv: LV) {
        if let Ok(idx) = self.0.binary_search(&lv) {
            self.0.remove(idx);
        }
    }

    /// Replaces this frontier with the result of appending an event.
    ///
    /// `parents` are the parents of the new event `lv`. All parents that are
    /// frontier entries are removed and `lv` is inserted. This implements
    /// version advancement (paper §2.2: "the previous frontier ... becomes
    /// the new event's parents") and is correct whenever `parents ⊆
    /// Events(self)` and `self` is a true frontier.
    pub fn advance_by(&mut self, lv: LV, parents: &[LV]) {
        self.0.retain(|v| !parents.contains(v));
        self.insert(lv);
    }

    /// The entries as a slice.
    pub fn as_slice(&self) -> &[LV] {
        &self.0
    }
}

impl Deref for Frontier {
    type Target = [LV];

    fn deref(&self) -> &[LV] {
        &self.0
    }
}

impl From<Vec<LV>> for Frontier {
    fn from(mut v: Vec<LV>) -> Self {
        v.sort_unstable();
        v.dedup();
        Self(v)
    }
}

impl From<&[LV]> for Frontier {
    fn from(v: &[LV]) -> Self {
        Self::from_unsorted(v)
    }
}

impl<const N: usize> From<[LV; N]> for Frontier {
    fn from(v: [LV; N]) -> Self {
        Self::from_unsorted(&v)
    }
}

impl fmt::Display for Frontier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_properties() {
        let f = Frontier::root();
        assert!(f.is_root());
        assert_eq!(f.try_get_single(), None);
        assert_eq!(f.to_string(), "{}");
    }

    #[test]
    fn from_unsorted_dedups() {
        let f = Frontier::from_unsorted(&[5, 1, 5, 3]);
        assert_eq!(f.as_slice(), &[1, 3, 5]);
    }

    #[test]
    fn insert_remove() {
        let mut f = Frontier::from_unsorted(&[1, 5]);
        f.insert(3);
        assert_eq!(f.as_slice(), &[1, 3, 5]);
        f.insert(3);
        assert_eq!(f.as_slice(), &[1, 3, 5]);
        f.remove(1);
        assert_eq!(f.as_slice(), &[3, 5]);
        assert!(f.contains_entry(3));
        assert!(!f.contains_entry(1));
    }

    #[test]
    fn advance_replaces_parents() {
        let mut f = Frontier::from_unsorted(&[4, 7]);
        // New event 9 whose parents are {4, 7}: frontier collapses to {9}.
        f.advance_by(9, &[4, 7]);
        assert_eq!(f.as_slice(), &[9]);
        // New event 12 with parent {2} (an older event): 9 stays.
        f.advance_by(12, &[2]);
        assert_eq!(f.as_slice(), &[9, 12]);
    }

    #[test]
    fn single() {
        let f = Frontier::new_1(3);
        assert_eq!(f.try_get_single(), Some(3));
        assert_eq!(f.to_string(), "{3}");
    }
}
