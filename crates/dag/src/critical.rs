//! Standalone critical-version computation (paper §3.5).
//!
//! [`Graph`] maintains critical versions incrementally; this module provides
//! an independent from-scratch recomputation used to cross-check it (and to
//! document the algorithm).

use crate::{Frontier, Graph, LV};

/// Recomputes the set of critical versions of `graph` from scratch.
///
/// A version `{v}` is *critical* iff it partitions the event graph: every
/// event is either an ancestor-or-equal of `v`, or a descendant of `v`
/// (paper §3.5). Because LVs are topologically ordered, this decomposes into
/// two conditions:
///
/// * **A**: every event with a smaller LV is an ancestor of `v` — i.e. the
///   frontier of the LV-prefix `[0, v]` is exactly `{v}`.
/// * **B**: every event with a larger LV is a descendant of `v` — which, in
///   a transitively reduced graph, holds iff no parent edge `(p, q)` skips
///   over `v` (`p < v < q`) and no root event comes after `v`.
///
/// Runs in O(n + E). Returns the critical LVs in ascending order.
///
/// # Examples
///
/// ```
/// use eg_dag::{criticality, Graph};
/// let mut g = Graph::new();
/// g.push(&[], (0..3).into());
/// g.push(&[0], (3..4).into()); // concurrent with events 1, 2
/// g.push(&[2, 3], (4..5).into());
/// assert_eq!(criticality(&g), vec![0, 4]);
/// ```
pub fn criticality(graph: &Graph) -> Vec<LV> {
    let n = graph.len();
    if n == 0 {
        return Vec::new();
    }

    // Condition B: difference array over "killed" intervals.
    let mut kill = vec![0i64; n + 1];
    for entry in graph.iter() {
        if entry.parents.is_root() {
            // A root at position s kills every candidate before it.
            if entry.span.start > 0 {
                kill[0] += 1;
                kill[entry.span.start] -= 1;
            }
        } else {
            let min_p = *entry.parents.iter().min().unwrap();
            // Each parent edge (p, s) kills candidates in (p, s); the union
            // over parents is (min_p, s).
            if min_p + 1 < entry.span.start {
                kill[min_p + 1] += 1;
                kill[entry.span.start] -= 1;
            }
        }
    }

    let mut out = Vec::new();
    let mut killed_acc = 0i64;
    let killed_at = move |kill: &[i64], lv: usize, acc: &mut i64| {
        *acc += kill[lv];
        *acc > 0
    };

    // Condition A: sweep the frontier forward.
    let mut frontier = Frontier::root();
    for entry in graph.iter() {
        let a_ok = frontier.iter().all(|v| entry.parents.contains_entry(*v));
        for lv in entry.span.iter() {
            let b_killed = killed_at(&kill, lv, &mut killed_acc);
            if a_ok && !b_killed {
                out.push(lv);
            }
        }
        frontier.advance_by(entry.span.last(), &entry.parents);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_chain_all_critical() {
        let mut g = Graph::new();
        g.push(&[], (0..5).into());
        assert_eq!(criticality(&g), vec![0, 1, 2, 3, 4]);
        // Incremental agrees.
        assert_eq!(g.criticals().item_len(), 5);
        assert!(g.is_critical(3));
        assert_eq!(g.latest_critical_at_or_before(4), Some(4));
    }

    #[test]
    fn branch_kills_interior() {
        let mut g = Graph::new();
        g.push(&[], (0..3).into()); // 0 1 2
        g.push(&[0], (3..4).into()); // 3 branches off 0: kills 1, 2
        g.push(&[2, 3], (4..6).into()); // merge; 4, 5 critical again
        assert_eq!(criticality(&g), vec![0, 4, 5]);
        let inc: Vec<_> = g.criticals().iter().flat_map(|r| r.iter()).collect();
        assert_eq!(inc, vec![0, 4, 5]);
        assert_eq!(g.latest_critical_at_or_before(3), Some(0));
        assert_eq!(g.latest_critical_at_or_before(5), Some(5));
    }

    #[test]
    fn late_root_kills_everything_before() {
        let mut g = Graph::new();
        g.push(&[], (0..3).into());
        g.push(&[], (3..4).into()); // a second root
        g.push(&[2, 3], (4..5).into());
        assert_eq!(criticality(&g), vec![4]);
        let inc: Vec<_> = g.criticals().iter().flat_map(|r| r.iter()).collect();
        assert_eq!(inc, vec![4]);
    }

    #[test]
    fn unmerged_branch_leaves_nothing_critical_after_fork() {
        let mut g = Graph::new();
        g.push(&[], (0..2).into());
        g.push(&[1], (2..4).into());
        g.push(&[1], (4..6).into()); // still unmerged
        assert_eq!(criticality(&g), vec![0, 1]);
        let inc: Vec<_> = g.criticals().iter().flat_map(|r| r.iter()).collect();
        assert_eq!(inc, vec![0, 1]);
        // After the merge, the merge event becomes critical.
        g.push(&[3, 5], (6..7).into());
        assert_eq!(criticality(&g), vec![0, 1, 6]);
        let inc: Vec<_> = g.criticals().iter().flat_map(|r| r.iter()).collect();
        assert_eq!(inc, vec![0, 1, 6]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new();
        assert!(criticality(&g).is_empty());
        assert_eq!(g.latest_critical_at_or_before(0), None);
    }

    #[test]
    fn fig4_criticals() {
        // Paper figure 4: 8 events, branches between 2..7, merge at 7.
        let mut g = Graph::new();
        g.push(&[], (0..2).into());
        g.push(&[1], (2..4).into());
        g.push(&[1], (4..7).into());
        g.push(&[3, 6], (7..8).into());
        assert_eq!(criticality(&g), vec![0, 1, 7]);
        let inc: Vec<_> = g.criticals().iter().flat_map(|r| r.iter()).collect();
        assert_eq!(inc, vec![0, 1, 7]);
    }
}
