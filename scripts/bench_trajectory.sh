#!/usr/bin/env bash
# Bench-trajectory capture: run the paper-figure harness binaries at a
# fixed scale, store their JSON outputs under bench-results/, and diff
# the fresh capture against the previous one, failing on regressions
# (ROADMAP "bench trajectory capture").
#
# Usage: ./scripts/bench_trajectory.sh            # default EG_SCALE=0.02
#        EG_SCALE=0.1 ./scripts/bench_trajectory.sh
#        EG_DIFF_THRESHOLD=0.75 ./scripts/bench_trajectory.sh
#        EG_SKIP_DIFF=1 ./scripts/bench_trajectory.sh   # capture only
#        EG_DIFF_ADVISORY_TIME=1 ./scripts/bench_trajectory.sh
#          (time regressions print but don't fail — for CI, where the
#           baseline was captured on a different machine class; byte
#           metrics still enforce)
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${EG_SCALE:-0.02}"
# Generous default: timings on shared CI runners jitter; the diff exists
# to catch step-change regressions, not percent-level noise.
THRESHOLD="${EG_DIFF_THRESHOLD:-0.75}"
OUT_DIR="bench-results"
PREV_DIR="$OUT_DIR/prev"
mkdir -p "$OUT_DIR"

# Keep the previous capture for the cross-run diff.
if ls "$OUT_DIR"/*.json >/dev/null 2>&1; then
    rm -rf "$PREV_DIR"
    mkdir -p "$PREV_DIR"
    cp "$OUT_DIR"/*.json "$PREV_DIR/"
fi

echo "== bench trajectory @ EG_SCALE=$SCALE =="
EG_SCALE="$SCALE" cargo run --release -q -p eg-bench --bin table1 -- \
    --json "$OUT_DIR/table1.json"
EG_SCALE="$SCALE" cargo run --release -q -p eg-bench --bin fig8_timings -- \
    --json "$OUT_DIR/fig8.json"
EG_SCALE="$SCALE" cargo run --release -q -p eg-bench --bin fig9_opts -- \
    --json "$OUT_DIR/fig9.json"
EG_SCALE="$SCALE" cargo run --release -q -p eg-bench --bin fig10_memusage -- \
    --json "$OUT_DIR/fig10.json"
# Worker-pool sweep. EG_WORKERS here must match the committed capture:
# bench_diff refuses to compare sweeps over different worker counts.
EG_SCALE="$SCALE" EG_WORKERS="${EG_WORKERS:-1,2,4,8}" \
    cargo run --release -q -p eg-bench --bin server_load -- \
    --json "$OUT_DIR/server_load.json"
# Segment-store open: cold replay vs checkpointed cached load. The
# speedup_x columns are same-machine ratios, enforced even when absolute
# timings are advisory.
EG_SCALE="$SCALE" cargo run --release -q -p eg-bench --bin doc_load -- \
    --json "$OUT_DIR/doc_load.json"
# Daemon-mode sync over a Unix socket through the fault proxy at
# 0%/1%/5% loss. Latency-bound by the sync interval, not throughput
# (see bench-results/README.md); wire-byte counters are informational.
# (The daemons log connection teardown to stderr during shutdown;
# that noise is expected.)
EG_SCALE="$SCALE" cargo run --release -q -p eg-bench --bin daemon_sync -- \
    --json "$OUT_DIR/daemon_sync.json"

echo "== captured =="
ls -l "$OUT_DIR"/*.json

if [[ "${EG_SKIP_DIFF:-0}" != "1" && -d "$PREV_DIR" ]]; then
    DIFF_FLAGS=()
    if [[ "${EG_DIFF_ADVISORY_TIME:-0}" == "1" ]]; then
        DIFF_FLAGS+=(--advisory-time)
    fi
    echo "== cross-run diff (threshold +$(awk "BEGIN{print $THRESHOLD*100}")%) =="
    # ${arr[@]+...} guards the empty-array expansion: under `set -u`,
    # bash < 4.4 treats a bare "${DIFF_FLAGS[@]}" as unbound.
    cargo run --release -q -p eg-bench --bin bench_diff -- \
        --baseline "$PREV_DIR" --current "$OUT_DIR" --threshold "$THRESHOLD" \
        ${DIFF_FLAGS[@]+"${DIFF_FLAGS[@]}"}
fi

# Trend view: the trajectory of every checked metric across the frozen
# per-PR baselines plus this capture (informational; never fails).
TREND_DIRS=()
for d in "$OUT_DIR"/pr*_baseline; do
    [[ -d "$d" ]] && TREND_DIRS+=("$d")
done
if (( ${#TREND_DIRS[@]} >= 1 )); then
    echo "== trend across ${#TREND_DIRS[@]} frozen baseline(s) + current =="
    cargo run --release -q -p eg-bench --bin bench_diff -- \
        --trend "${TREND_DIRS[@]}" "$OUT_DIR"
fi
