#!/usr/bin/env bash
# Bench-trajectory capture: run the paper-figure harness binaries at a
# fixed scale and store their JSON outputs under bench-results/, so runs
# can be diffed across PRs (ROADMAP "bench trajectory capture").
#
# Usage: ./scripts/bench_trajectory.sh            # default EG_SCALE=0.02
#        EG_SCALE=0.1 ./scripts/bench_trajectory.sh
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${EG_SCALE:-0.02}"
OUT_DIR="bench-results"
mkdir -p "$OUT_DIR"

echo "== bench trajectory @ EG_SCALE=$SCALE =="
EG_SCALE="$SCALE" cargo run --release -q -p eg-bench --bin table1 -- \
    --json "$OUT_DIR/table1.json"
EG_SCALE="$SCALE" cargo run --release -q -p eg-bench --bin fig8_timings -- \
    --json "$OUT_DIR/fig8.json"

echo "== captured =="
ls -l "$OUT_DIR"/*.json
