#!/usr/bin/env bash
# Workspace invariant gate: runs the three eg-analyze passes
# (panic-freedom, allocation discipline, unsafe audit) against the
# committed analyze.toml / analyze-allowlist.toml / unsafe_inventory.txt.
#
# Usage:
#   ./scripts/analyze.sh                 # the CI gate (exit 1 on findings)
#   ./scripts/analyze.sh --bless         # also refresh unsafe_inventory.txt
#                                        # and the fixture goldens
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--bless" ]]; then
    cargo run -q -p eg-analyze -- check --root . --write-inventory
    EG_ANALYZE_BLESS=1 cargo test -q -p eg-analyze --test fixtures
fi

cargo run -q -p eg-analyze -- check --root .
