#!/usr/bin/env bash
# Builds and runs every program in examples/, failing on the first broken
# one. Used by CI to keep the facade crate's public API exercised; handy
# locally too:  ./scripts/run_examples.sh [--release]
set -euo pipefail
cd "$(dirname "$0")/.."

profile="${1:-}"
for ex in examples/*.rs; do
    name="$(basename "$ex" .rs)"
    echo "=== example: $name ==="
    # shellcheck disable=SC2086
    cargo run --quiet $profile --example "$name"
done
echo "all examples ran successfully"
