//! History inspection: blame, restoring old versions, and scrubbing.
//!
//! Because Eg-walker persists the event graph (not CRDT state), the full
//! editing history stays available: any past version can be restored by
//! partial replay, every character can be attributed to its author, and a
//! history slider can scrub through the document's evolution (paper §6).
//!
//! Run with: `cargo run --example history_blame`

use eg_walker_suite::core_crate::history::{restore, Scrubber};
use eg_walker_suite::OpLog;

fn main() {
    // Two authors write a document with concurrent contributions.
    let mut oplog = OpLog::new();
    let alice = oplog.get_or_create_agent("alice");
    let bob = oplog.get_or_create_agent("bob");

    oplog.add_insert(alice, 0, "Fruit list:\n");
    let v_list = oplog.version().clone();

    // Concurrently: alice adds apples while bob adds bananas.
    oplog.add_insert_at(alice, &v_list, 12, "- apples\n");
    oplog.add_insert_at(bob, &v_list, 12, "- bananas\n");
    let v_fruit = oplog.version().clone();

    // Alice reconsiders and deletes the header's colon; bob appends.
    oplog.add_delete_at(alice, &v_fruit, 10, 1);
    let tip = oplog.version().clone();
    let doc = oplog.checkout_tip();
    println!("document:\n{}", doc.content);

    // --- Blame: who wrote each character? --------------------------------
    println!("--- blame ---");
    let spans = oplog.blame();
    let text: Vec<char> = doc.content.to_string().chars().collect();
    let mut pos = 0;
    for span in &spans {
        let chunk: String = text[pos..pos + span.len()].iter().collect();
        println!("{:>6}: {:?}", span.agent, chunk);
        pos += span.len();
    }
    assert_eq!(pos, text.len());

    // --- Restore: any version is a partial replay away -------------------
    println!("--- restore ---");
    println!("at v_list:  {:?}", restore(&oplog, &v_list));
    println!("at v_fruit: {:?}", restore(&oplog, &v_fruit));
    println!("at tip:     {:?}", restore(&oplog, &tip));

    // --- Diff between versions: the editor's incremental update ----------
    println!("--- diff v_list -> tip ---");
    for op in oplog.diff_versions(&v_list, &tip) {
        println!("{op:?}");
    }

    // --- Scrubbing: a history slider -------------------------------------
    println!("--- scrub ---");
    let mut scrub = Scrubber::new(&oplog);
    let steps = scrub.num_steps();
    for k in [0, steps / 4, steps / 2, 3 * steps / 4, steps] {
        println!("step {k:>3}: {:?}", scrub.seek(k));
    }
    assert_eq!(scrub.seek(steps), doc.content.to_string());
}
