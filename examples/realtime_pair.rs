//! Real-time pair editing over a simulated network: each keystroke is
//! broadcast and merged incrementally at the other replica — only the tiny
//! conflict window is ever replayed (paper §3.6).
//!
//! Run with: `cargo run --example realtime_pair`

use eg_walker_suite::{Branch, OpLog};

fn main() {
    // One shared oplog stands in for the network (both replicas see all
    // events eventually); each editor keeps a live Branch.
    let mut oplog = OpLog::new();
    let alice = oplog.get_or_create_agent("alice");
    let bob = oplog.get_or_create_agent("bob");
    let mut alice_doc = Branch::new();
    let mut bob_doc = Branch::new();

    // Interleaved typing with latency: each editor types against their
    // own (possibly stale) version.
    let alice_words = ["collaborative ", "editing ", "with "];
    let bob_words = ["event ", "graphs "];
    for round in 0..3 {
        // Alice types at her cursor (end of her view).
        let av = alice_doc.version.clone();
        let a_pos = alice_doc.len_chars();
        oplog.add_insert_at(alice, &av, a_pos, alice_words[round % alice_words.len()]);

        // Bob concurrently types at the start of his view.
        let bv = bob_doc.version.clone();
        oplog.add_insert_at(bob, &bv, 0, bob_words[round % bob_words.len()]);

        // Network delivery: both replicas merge everything they have.
        alice_doc.merge(&oplog);
        bob_doc.merge(&oplog);
        println!(
            "round {round}: alice sees {:?}",
            alice_doc.content.to_string()
        );
        println!("         bob sees   {:?}", bob_doc.content.to_string());
        assert_eq!(alice_doc, bob_doc, "replicas must converge every round");
    }
    println!("final: {:?}", alice_doc.content.to_string());
}
