//! Quickstart: concurrent editing, merging, and convergence.
//!
//! Run with: `cargo run --example quickstart`

use eg_walker_suite::{Branch, OpLog};

fn main() {
    // A replica's durable state is an OpLog: the append-only event graph.
    let mut oplog = OpLog::new();
    let alice = oplog.get_or_create_agent("alice");
    let bob = oplog.get_or_create_agent("bob");

    // Alice types the seed text (paper Figure 1).
    oplog.add_insert(alice, 0, "Helo");
    let v = oplog.version().clone();

    // Concurrently: alice fixes the typo while bob appends an exclamation
    // mark. Both edits are parented on the same version.
    oplog.add_insert_at(alice, &v, 3, "l");
    oplog.add_insert_at(bob, &v, 4, "!");

    // Checking out replays the graph, transforming concurrent operations.
    let doc = oplog.checkout_tip();
    println!("merged: {:?}", doc.content.to_string());
    assert_eq!(doc.content.to_string(), "Hello!");

    // Live documents merge incrementally: only the conflict window is
    // replayed, not the whole history (paper §3.6).
    let mut live = Branch::new();
    live.merge(&oplog);
    oplog.add_insert(alice, 6, " Nice to meet you.");
    live.merge(&oplog); // applies just the new events
    println!("after more typing: {:?}", live.content.to_string());

    // Historical versions are a replay away (time travel).
    let old = oplog.checkout(&v);
    println!("historical checkout: {:?}", old.content.to_string());
    assert_eq!(old.content.to_string(), "Helo");
}
