//! Peer-to-peer collaboration over an unreliable network.
//!
//! Three replicas collaborate through the simulated network of `eg-sync`:
//! messages are delayed, reordered, and 25% of them are dropped outright.
//! Then the network partitions, both sides keep typing, and the partition
//! heals. Anti-entropy repairs every loss and the replicas converge — the
//! paper's §2.1 system model end to end, with no central server.
//!
//! Run with: `cargo run --example p2p_sync`

use eg_walker_suite::sync::{LinkConfig, NetworkSim};

fn main() {
    let link = LinkConfig {
        min_delay: 1,
        max_delay: 12,
        drop_per_mille: 250, // A quarter of all messages vanish.
    };
    let mut net = NetworkSim::with_link(&["alice", "bob", "carol"], 0xE9_2025, link);

    println!("--- live collaboration over a lossy link ---");
    net.edit_insert(0, 0, "Project notes\n");
    net.edit_insert(1, 0, "(draft) ");
    net.edit_insert(2, 0, "# ");
    for _ in 0..5 {
        net.tick();
    }
    let alice_len = net.replica(0).len_chars();
    net.edit_insert(0, alice_len, "- agenda item one\n");
    assert!(net.run_until_quiescent(10_000));

    for i in 0..3 {
        println!("{:>6}: {:?}", net.replica(i).name(), net.replica(i).text());
    }
    assert!(net.all_converged());
    let s = net.stats();
    println!(
        "sent {} msgs, dropped {}, delivered {}, repaired via {} anti-entropy syncs",
        s.sent, s.dropped, s.delivered, s.syncs
    );

    println!("\n--- partition: alice+bob | carol ---");
    net.partition(&[&[0, 1], &[2]]);
    let len = net.replica(0).len_chars();
    net.edit_insert(0, len, "- written during the partition (left)\n");
    let len = net.replica(2).len_chars();
    net.edit_insert(2, len, "- written during the partition (right)\n");
    assert!(net.run_until_quiescent(10_000));
    println!(
        "left  sees {} chars, right sees {} chars (diverged)",
        net.replica(0).len_chars(),
        net.replica(2).len_chars()
    );
    assert_ne!(net.replica(0).text(), net.replica(2).text());

    println!("\n--- heal ---");
    net.heal();
    assert!(net.run_until_quiescent(10_000));
    assert!(net.all_converged());
    println!("converged text:\n{}", net.replica(0).text());

    // Each replica only ever held the document text plus the event graph;
    // per-replica causal buffering handled every reordering.
    for i in 0..3 {
        let st = net.replica(i).stats();
        println!(
            "{:>6}: {} bundles applied, {} buffered out-of-order, {} duplicates",
            net.replica(i).name(),
            st.applied_direct,
            st.buffered,
            st.duplicates
        );
    }
}
