//! Time travel: the event graph stores the full history, so any historical
//! version can be checked out, and the changes between two versions can be
//! extracted as transformed operations (paper §6).
//!
//! Run with: `cargo run --example time_travel`

use eg_walker_suite::core_crate::walker::{transformed_ops, WalkerOpts};
use eg_walker_suite::OpLog;

fn main() {
    let mut oplog = OpLog::new();
    let author = oplog.get_or_create_agent("author");

    // A little editing session with checkpoints.
    let v1 = oplog.add_insert(author, 0, "The quick brown fox").last();
    let v2 = oplog
        .add_insert(author, 19, " jumps over the lazy dog")
        .last();
    oplog.add_delete(author, 4, 6); // drop "quick "
    let v3 = oplog.add_insert(author, 4, "nimble ").last();

    for (label, v) in [("v1", v1), ("v2", v2), ("v3", v3)] {
        let doc = oplog.checkout(&[v]);
        println!("{label}: {:?}", doc.content.to_string());
    }

    // Diff between two versions: the transformed operations that take the
    // v2 document to the v3 document.
    let (_, ops) = transformed_ops(&oplog, &[v2], &[v3], WalkerOpts::default());
    println!("changes from v2 to v3:");
    for (lvs, op) in ops {
        println!("  events {:?}: {:?}", lvs, op);
    }

    // And the whole history can be saved/loaded via the event-graph format.
    let bytes = eg_walker_suite::encoding::encode(
        &oplog,
        eg_walker_suite::encoding::EncodeOpts {
            cache_final_doc: true,
            ..Default::default()
        },
    );
    println!("encoded history: {} bytes", bytes.len());
    let decoded = eg_walker_suite::encoding::decode(&bytes).unwrap();
    println!("fast load: {:?}", decoded.cached_doc.unwrap());
}
