//! Collaborative undo/redo on top of the event graph.
//!
//! Undo never rewrites history — events are immutable (paper §2.2) — so
//! the session appends *inverse* events: undoing an insertion deletes
//! exactly the surviving inserted characters (even if remote users deleted
//! some of them first), and undoing a deletion restores the text, aliased
//! to the original characters so deeper undo keeps working. Everything
//! replicates like any other edit.
//!
//! Run with: `cargo run --example collaborative_undo`

use eg_walker_suite::core_crate::session::Session;

fn main() {
    let mut alice = Session::new("alice");
    let mut bob = Session::new("bob");

    // Alice drafts a sentence; bob receives it.
    alice.insert(0, "The quick brown fox jumps over the lazy dog.");
    sync(&mut alice, &mut bob);
    println!("draft:      {:?}", alice.text());

    // Bob bolds his opinion in the middle while alice appends hers.
    bob.insert(19, " (citation needed)");
    alice.insert(44, " Fin.");
    sync(&mut bob, &mut alice);
    sync(&mut alice, &mut bob);
    println!("both edit:  {:?}", alice.text());
    assert_eq!(alice.text(), bob.text());

    // Alice selects "quick brown " and deletes it.
    alice.select(4, 16);
    alice.delete_selection();
    sync(&mut alice, &mut bob);
    println!("deleted:    {:?}", alice.text());

    // She reconsiders: undo restores the deleted words — and the undo
    // itself replicates to bob.
    alice.undo();
    sync(&mut alice, &mut bob);
    println!("undone:     {:?}", alice.text());
    assert!(alice.text().contains("quick brown fox"));
    assert_eq!(alice.text(), bob.text());

    // Undoing further unwinds her own earlier edits, never bob's.
    alice.undo(); // removes " Fin."
    sync(&mut alice, &mut bob);
    println!("undo more:  {:?}", alice.text());
    assert!(alice.text().contains("(citation needed)"));
    assert!(!alice.text().contains("Fin."));

    // Redo brings it back.
    alice.redo();
    sync(&mut alice, &mut bob);
    println!("redone:     {:?}", alice.text());
    assert!(alice.text().ends_with("Fin."));
    assert_eq!(alice.text(), bob.text());

    // The caret survives remote edits: bob prepends a title while alice's
    // caret sits at her last insertion.
    let before = alice.selection().head;
    bob.insert(0, "FABLES\n");
    sync(&mut bob, &mut alice);
    let after = alice.selection().head;
    println!("caret moved {} -> {} as the title arrived", before, after);
    assert_eq!(after, before + "FABLES\n".len());
}

/// Ships every pending bundle from `src` to `dst`.
fn sync(src: &mut Session, dst: &mut Session) {
    for bundle in src.take_outbox() {
        dst.merge_remote(&bundle);
    }
}
