//! Offline collaboration: two replicas diverge for a long session, then
//! exchange their event graphs and merge — the workload where OT is
//! quadratic and Eg-walker stays fast (paper §1, §4.3).
//!
//! Run with: `cargo run --release --example offline_collaboration`

use eg_walker_suite::{Frontier, OpLog};
use std::time::Instant;

fn main() {
    // A shared document, then the plane takes off: both replicas go
    // offline with a copy of the same oplog.
    let mut base = OpLog::new();
    let alice = base.get_or_create_agent("alice");
    base.add_insert(alice, 0, "Trip notes:\n");
    let mut replica_a = base.clone();
    let mut replica_b = base.clone();
    let bob = replica_b.get_or_create_agent("bob");

    // Each replica writes a few thousand events independently.
    let mut va = replica_a.version().clone();
    for i in 0..2000 {
        let pos = replica_a.checkout(&va).len_chars();
        let lvs = replica_a.add_insert_at(alice, &va, pos, "alice writes about the mountains. ");
        va = Frontier::new_1(lvs.last());
        let _ = i;
    }
    let mut vb = replica_b.version().clone();
    for _ in 0..2000 {
        let lvs = replica_b.add_insert_at(bob, &vb, 12, "bob writes about the sea. ");
        vb = Frontier::new_1(lvs.last());
    }

    // Back online: exchange event graphs (the union of event sets, §2.2).
    let t0 = Instant::now();
    replica_a.merge_oplog(&replica_b);
    replica_b.merge_oplog(&replica_a);
    println!("event exchange: {:?}", t0.elapsed());

    // Both replicas replay and converge.
    let t0 = Instant::now();
    let doc_a = replica_a.checkout_tip();
    let doc_b = replica_b.checkout_tip();
    println!("merge (both replicas): {:?}", t0.elapsed());
    assert_eq!(doc_a.content.to_string(), doc_b.content.to_string());
    println!(
        "converged to {} chars; first 60: {:?}",
        doc_a.len_chars(),
        doc_a.content.slice_to_string(0, 60)
    );
}
